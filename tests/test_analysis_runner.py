"""Unit tests for the experiment runner and its crash-safe cache."""

import json

import pytest

from repro.analysis.runner import (
    CACHE_SCHEMA_VERSION,
    ExperimentRunner,
    RunGrid,
    run_seed,
)
from repro.core.baselines import RandomSearch
from repro.core.objectives import Objective


def random_factory(environment, objective, seed):
    return RandomSearch(environment, objective=objective, seed=seed)


@pytest.fixture()
def runner(trace, tmp_path):
    return ExperimentRunner(trace=trace, cache_dir=tmp_path / "cache")


WORKLOADS = ("kmeans/Spark 2.1/small", "scan/Hadoop 2.7/small")


class TestRunGrid:
    def test_validation(self):
        with pytest.raises(ValueError, match="repeats"):
            RunGrid("k", random_factory, Objective.TIME, WORKLOADS, 0)
        with pytest.raises(ValueError, match="workload_ids"):
            RunGrid("k", random_factory, Objective.TIME, (), 1)
        with pytest.raises(ValueError, match="'/'"):
            RunGrid("a/b", random_factory, Objective.TIME, WORKLOADS, 1)


class TestRunSeed:
    def test_deterministic(self):
        assert run_seed("w", 3) == run_seed("w", 3)

    def test_varies_with_workload_and_repeat(self):
        assert run_seed("a", 0) != run_seed("b", 0)
        assert run_seed("a", 0) != run_seed("a", 1)

    def test_non_negative_31_bit(self):
        for repeat in range(20):
            seed = run_seed("some/workload/id", repeat)
            assert 0 <= seed < 2**31


class TestRunner:
    def test_runs_grid_and_returns_per_workload_results(self, runner):
        grid = RunGrid("random", random_factory, Objective.TIME, WORKLOADS, 3)
        results = runner.run(grid)
        assert set(results) == set(WORKLOADS)
        assert all(len(runs) == 3 for runs in results.values())
        assert all(r.search_cost == 18 for runs in results.values() for r in runs)

    def test_results_deterministic_across_runner_instances(self, trace, tmp_path):
        grid = RunGrid("random", random_factory, Objective.TIME, WORKLOADS, 2)
        a = ExperimentRunner(trace=trace, cache_dir=None).run(grid)
        b = ExperimentRunner(trace=trace, cache_dir=None).run(grid)
        for workload in WORKLOADS:
            assert [r.measured_vm_names for r in a[workload]] == [
                r.measured_vm_names for r in b[workload]
            ]

    def test_cache_roundtrip_preserves_results(self, runner, trace, tmp_path):
        grid = RunGrid("random", random_factory, Objective.TIME, WORKLOADS, 2)
        fresh = runner.run(grid)
        cached = runner.run(grid)  # second call must hit the cache
        for workload in WORKLOADS:
            for a, b in zip(fresh[workload], cached[workload]):
                assert a.measured_vm_names == b.measured_vm_names
                assert a.best_value == pytest.approx(b.best_value)
                assert a.stopped_by == b.stopped_by

    def test_cache_file_created(self, runner, tmp_path):
        grid = RunGrid("random", random_factory, Objective.TIME, WORKLOADS, 1)
        runner.run(grid)
        cache_file = tmp_path / "cache" / "random__time.json"
        assert cache_file.exists()
        payload = json.loads(cache_file.read_text())
        assert set(payload["results"]) == set(WORKLOADS)

    def test_incremental_repeats_extend_cache(self, runner):
        grid_small = RunGrid("random", random_factory, Objective.TIME, WORKLOADS, 2)
        grid_large = RunGrid("random", random_factory, Objective.TIME, WORKLOADS, 4)
        small = runner.run(grid_small)
        large = runner.run(grid_large)
        for workload in WORKLOADS:
            # The first two repeats are the cached ones, unchanged.
            assert [r.measured_vm_names for r in large[workload][:2]] == [
                r.measured_vm_names for r in small[workload]
            ]
            assert len(large[workload]) == 4

    def test_objectives_cached_separately(self, runner, tmp_path):
        runner.run(RunGrid("random", random_factory, Objective.TIME, WORKLOADS, 1))
        runner.run(RunGrid("random", random_factory, Objective.COST, WORKLOADS, 1))
        assert (tmp_path / "cache" / "random__time.json").exists()
        assert (tmp_path / "cache" / "random__cost.json").exists()

    def test_optimal_value_matches_trace(self, runner, trace):
        workload = WORKLOADS[0]
        assert runner.optimal_value(workload, Objective.COST) == pytest.approx(
            trace.costs_for(workload).min()
        )

    def test_costs_to_optimum_structure(self, runner):
        grid = RunGrid("random", random_factory, Objective.TIME, WORKLOADS, 3)
        results = runner.run(grid)
        costs = runner.costs_to_optimum(results, Objective.TIME)
        assert set(costs) == set(WORKLOADS)
        # Full random sweeps always find the optimum somewhere.
        assert all(c is not None and 1 <= c <= 18 for cs in costs.values() for c in cs)

    def test_no_cache_dir_disables_caching(self, trace):
        runner = ExperimentRunner(trace=trace, cache_dir=None)
        grid = RunGrid("random", random_factory, Objective.TIME, WORKLOADS, 1)
        runner.run(grid)  # must simply not raise

    def test_cache_file_carries_schema_version(self, runner, tmp_path):
        grid = RunGrid("random", random_factory, Objective.TIME, WORKLOADS, 1)
        runner.run(grid)
        payload = json.loads((tmp_path / "cache" / "random__time.json").read_text())
        assert payload["schema"] == CACHE_SCHEMA_VERSION
        assert set(payload["results"]) == set(WORKLOADS)


def _results_signature(results):
    return {
        workload: [
            (r.measured_vm_names, r.best_value, r.stopped_by) for r in runs
        ]
        for workload, runs in results.items()
    }


class TestCacheRecovery:
    """A killed process must never poison the cache for the next one."""

    GRID = ("random", random_factory, Objective.TIME, WORKLOADS, 2)

    def test_truncated_cache_file_is_quarantined_and_recomputed(
        self, runner, tmp_path
    ):
        grid = RunGrid(*self.GRID)
        fresh = runner.run(grid)
        cache_file = tmp_path / "cache" / "random__time.json"
        # Simulate a crash mid-write: keep only the first half of the file.
        text = cache_file.read_text()
        cache_file.write_text(text[: len(text) // 2])

        recovered = runner.run(grid)
        assert _results_signature(recovered) == _results_signature(fresh)
        assert (tmp_path / "cache" / "random__time.corrupt").exists()
        # The rebuilt cache is valid again.
        assert json.loads(cache_file.read_text())["schema"] == CACHE_SCHEMA_VERSION

    def test_non_json_garbage_is_quarantined(self, runner, tmp_path):
        grid = RunGrid(*self.GRID)
        fresh = runner.run(grid)
        cache_file = tmp_path / "cache" / "random__time.json"
        cache_file.write_bytes(b"\x00\xff garbage \x80")
        assert _results_signature(runner.run(grid)) == _results_signature(fresh)

    def test_repeated_corruption_keeps_all_quarantine_files(self, runner, tmp_path):
        grid = RunGrid(*self.GRID)
        cache_file = tmp_path / "cache" / "random__time.json"
        for _ in range(2):
            runner.run(grid)
            cache_file.write_text("{broken")
        runner.run(grid)
        corrupts = sorted(p.name for p in (tmp_path / "cache").glob("random__time.corrupt*"))
        assert corrupts == ["random__time.corrupt", "random__time.corrupt-1"]

    def test_unknown_schema_version_is_quarantined(self, runner, tmp_path):
        grid = RunGrid(*self.GRID)
        fresh = runner.run(grid)
        cache_file = tmp_path / "cache" / "random__time.json"
        payload = json.loads(cache_file.read_text())
        payload["schema"] = 999
        cache_file.write_text(json.dumps(payload))
        assert _results_signature(runner.run(grid)) == _results_signature(fresh)
        assert (tmp_path / "cache" / "random__time.corrupt").exists()

    def test_legacy_v1_cache_is_migrated_not_recomputed(self, runner, trace, tmp_path):
        grid = RunGrid(*self.GRID)
        fresh = runner.run(grid)
        cache_file = tmp_path / "cache" / "random__time.json"
        payload = json.loads(cache_file.read_text())
        # Rewrite the file in the legacy (pre-schema) layout.
        legacy = {
            workload: {
                seed: {
                    "optimizer": entry["optimizer"],
                    "stopped_by": entry["stopped_by"],
                    "steps": [[vm, value] for vm, value, _ in entry["steps"]],
                }
                for seed, entry in per_workload.items()
            }
            for workload, per_workload in payload["results"].items()
        }
        cache_file.write_text(json.dumps(legacy))
        migrated = runner.run(grid)
        assert _results_signature(migrated) == _results_signature(fresh)
        # Migration, not quarantine: no .corrupt file appears.
        assert not list((tmp_path / "cache").glob("*.corrupt*"))

    def test_v2_cache_is_migrated_in_place_not_recomputed(
        self, runner, trace, tmp_path
    ):
        # v3 only *adds* optional trailing charge columns, so a v2 body
        # is shape-valid v3: the loader adopts it in place instead of
        # quarantining and recomputing.
        grid = RunGrid(*self.GRID)
        fresh = runner.run(grid)
        cache_file = tmp_path / "cache" / "random__time.json"
        payload = json.loads(cache_file.read_text())
        assert payload["schema"] == CACHE_SCHEMA_VERSION
        payload["schema"] = 2
        cache_file.write_text(json.dumps(payload))

        calls = {"n": 0}
        original = RandomSearch.run

        def counting_run(self):
            calls["n"] += 1
            return original(self)

        RandomSearch.run = counting_run
        try:
            migrated = ExperimentRunner(
                trace=trace, cache_dir=tmp_path / "cache"
            ).run(grid)
        finally:
            RandomSearch.run = original
        assert calls["n"] == 0  # migration, not recomputation
        assert _results_signature(migrated) == _results_signature(fresh)
        assert not list((tmp_path / "cache").glob("*.corrupt*"))
        # The next write re-stamps the file at the current schema.
        assert json.loads(cache_file.read_text())["schema"] in (2, 3)

    def test_malformed_entry_is_recomputed_in_place(self, runner, tmp_path):
        grid = RunGrid(*self.GRID)
        fresh = runner.run(grid)
        cache_file = tmp_path / "cache" / "random__time.json"
        payload = json.loads(cache_file.read_text())
        workload = WORKLOADS[0]
        payload["results"][workload]["0"]["steps"] = [["vm", "not-a-number", 1]]
        payload["results"][workload]["1"] = "nonsense"
        cache_file.write_text(json.dumps(payload))
        recovered = runner.run(grid)
        assert _results_signature(recovered) == _results_signature(fresh)
        # The intact workload's entries were trusted; the bad ones rewritten.
        rebuilt = json.loads(cache_file.read_text())
        assert rebuilt["results"][workload]["0"]["steps"][0][0] != "vm"


class TestChargeRoundTrip:
    """Fractional spot charges must cross the cache codec exactly."""

    def _spot_result(self, trace):
        from repro.cloud.spot import SpotMarket, SpotPolicy
        from repro.faults.models import FaultInjector, FaultPlan, SpotInterruptions

        market = SpotMarket(seed=5, base_hazard=0.25, hazard_slope=0.5)
        plan = FaultPlan((SpotInterruptions(market=market),), seed=3)
        env = FaultInjector(trace.environment(WORKLOADS[0]), plan)
        return RandomSearch(
            env, seed=3, measure_retries=5, spot=SpotPolicy(market=market)
        ).run()

    def test_charges_survive_json_with_no_float_drift(self, trace):
        from repro.analysis.runner import result_from_payload, result_to_payload

        result = self._spot_result(trace)
        charges = [s.charge for s in result.steps]
        assert any(c != 1.0 for c in charges), "spot run produced no discounts"
        assert any(f.charge != 1.0 for f in result.failure_events)

        wire = json.loads(json.dumps(result_to_payload(result)))
        decoded = result_from_payload(wire, result.objective, result.workload_id)
        # Exact equality, not approx: repr-based JSON floats round-trip
        # bit for bit, so resume bills exactly what the run billed.
        assert [s.charge for s in decoded.steps] == charges
        assert [f.charge for f in decoded.failure_events] == [
            f.charge for f in result.failure_events
        ]
        assert decoded.charged_cost == result.charged_cost
        # A second encode is byte-identical: queue hops cannot drift.
        assert json.dumps(result_to_payload(decoded), sort_keys=True) == json.dumps(
            result_to_payload(result), sort_keys=True
        )

    def test_on_demand_payload_has_no_charge_columns(self, trace):
        from repro.analysis.runner import result_to_payload

        result = RandomSearch(trace.environment(WORKLOADS[0]), seed=0).run()
        payload = result_to_payload(result)
        assert all(len(row) == 3 for row in payload["steps"])
        assert all(len(row) == 4 for row in payload.get("failures", []))
