"""Unit tests for the sysstat-style time-series recorder."""

import numpy as np
import pytest

from repro.cloud.vmtypes import get_vm_type
from repro.simulator.lowlevel import derive_metrics
from repro.simulator.perfmodel import PerformanceModel
from repro.simulator.sar import SarTrace, record_sar_trace
from repro.workloads.spec import ResourceProfile


@pytest.fixture(scope="module")
def model():
    return PerformanceModel()


def profile(**overrides):
    base = dict(
        cpu_seconds=300.0,
        parallel_fraction=0.9,
        working_set_gb=2.0,
        io_gb=10.0,
        shuffle_gb=5.0,
        cpu_gen_sensitivity=0.8,
    )
    base.update(overrides)
    return ResourceProfile(**base)


def record(model, vm_name, p, **kwargs):
    vm = get_vm_type(vm_name)
    return record_sar_trace(vm, p, model.breakdown(vm, p), **kwargs), vm


class TestRecording:
    def test_sample_count_tracks_duration(self, model):
        p = profile()
        trace, vm = record(model, "c4.large", p, interval_s=1.0, seed=0)
        expected = model.breakdown(vm, p).total_time_s
        assert len(trace) == pytest.approx(expected, abs=1.0)
        assert trace.duration_s == pytest.approx(len(trace))

    def test_short_runs_still_have_samples(self, model):
        p = profile(cpu_seconds=1.0, io_gb=0.1, shuffle_gb=0.0)
        trace, _ = record(model, "c4.2xlarge", p, seed=0)
        assert len(trace) >= 4

    def test_interval_changes_sample_count(self, model):
        p = profile()
        one, _ = record(model, "m4.large", p, interval_s=1.0, seed=0)
        five, _ = record(model, "m4.large", p, interval_s=5.0, seed=0)
        assert len(one) > len(five)

    def test_invalid_interval_rejected(self, model):
        p = profile()
        vm = get_vm_type("c4.large")
        with pytest.raises(ValueError, match="interval_s"):
            record_sar_trace(vm, p, model.breakdown(vm, p), interval_s=0.0)

    def test_deterministic_given_seed(self, model):
        p = profile()
        a, _ = record(model, "r3.large", p, seed=5)
        b, _ = record(model, "r3.large", p, seed=5)
        assert np.array_equal(a.to_matrix(), b.to_matrix())

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError, match="at least one sample"):
            SarTrace([])


class TestAggregationConsistency:
    def test_aggregate_matches_summary_metrics(self, model, catalog):
        """The whole point: the sample stream's time-average reproduces
        the summary metrics the optimisers consume."""
        p = profile()
        for vm in catalog[::5]:
            trace = record_sar_trace(vm, p, model.breakdown(vm, p), seed=1)
            summary = derive_metrics(vm, p, model.breakdown(vm, p))
            ratios = trace.aggregate().to_vector() / summary.to_vector()
            assert np.all(np.abs(ratios - 1.0) < 0.05)

    def test_paging_run_pins_the_disk(self, model):
        p = profile(working_set_gb=12.0)
        trace, vm = record(model, "c4.large", p, seed=0)
        matrix = trace.to_matrix()
        disk_util = matrix[:, 4]
        # Under paging, disk utilisation is persistently high.
        assert np.median(disk_util) > 60.0

    def test_memory_commit_ramps_up(self, model):
        trace, _ = record(model, "m4.xlarge", profile(), seed=0)
        mem = trace.to_matrix()[:, 3]
        first_tenth = mem[: max(len(mem) // 10, 1)].mean()
        last_half = mem[len(mem) // 2 :].mean()
        assert last_half > first_tenth

    def test_utilisation_metrics_within_physical_range(self, model):
        trace, _ = record(model, "c3.xlarge", profile(io_gb=80.0), seed=2)
        matrix = trace.to_matrix()
        for column, name in ((0, "cpu"), (1, "iowait"), (4, "disk")):
            assert matrix[:, column].min() >= 0.0
            assert matrix[:, column].max() <= 100.0 + 1e-9

    def test_matrix_shape(self, model):
        trace, _ = record(model, "c4.large", profile(), seed=0)
        assert trace.to_matrix().shape == (len(trace), 6)
