"""Unit tests for statistics helpers."""

import numpy as np
import pytest

from repro.analysis.stats import Summary, median_iqr_curve, summarize
from repro.core.objectives import Objective
from repro.core.result import SearchResult, SearchStep


def make_result(values):
    steps = []
    best = float("inf")
    for index, value in enumerate(values, start=1):
        best = min(best, value)
        steps.append(SearchStep(index, f"vm{index}", value, best))
    return SearchResult(
        optimizer="x",
        objective=Objective.TIME,
        workload_id="w",
        steps=tuple(steps),
        stopped_by="exhausted",
    )


class TestSummarize:
    def test_known_values(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
        assert summary.median == 3.0
        assert summary.q1 == 2.0
        assert summary.q3 == 4.0
        assert summary.mean == 3.0
        assert summary.count == 5
        assert summary.iqr == 2.0

    def test_single_value(self):
        summary = summarize([7.0])
        assert summary.median == summary.q1 == summary.q3 == 7.0
        assert summary.iqr == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            summarize([])

    def test_summary_is_dataclass(self):
        assert isinstance(summarize([1.0, 2.0]), Summary)


class TestMedianIqrCurve:
    def test_curves_have_requested_length(self):
        results = [make_result([5.0, 3.0, 4.0]), make_result([6.0, 2.0, 7.0])]
        median, q1, q3 = median_iqr_curve(results, 10)
        assert median.shape == q1.shape == q3.shape == (10,)

    def test_median_is_between_quartiles(self):
        rng = np.random.default_rng(0)
        results = [make_result(list(rng.uniform(1, 10, size=6))) for _ in range(20)]
        median, q1, q3 = median_iqr_curve(results, 6)
        assert np.all(q1 <= median)
        assert np.all(median <= q3)

    def test_best_so_far_is_nonincreasing(self):
        results = [make_result([9.0, 4.0, 6.0, 2.0])]
        median, _, _ = median_iqr_curve(results, 4)
        assert np.all(np.diff(median) <= 0)

    def test_short_runs_extended_with_final_best(self):
        results = [make_result([5.0, 3.0])]
        median, _, _ = median_iqr_curve(results, 6)
        assert np.all(median[1:] == 3.0)

    def test_normalisation(self):
        results = [make_result([10.0, 5.0])]
        median, _, _ = median_iqr_curve(results, 2, normalise_to=5.0)
        assert median.tolist() == [2.0, 1.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            median_iqr_curve([], 5)
        with pytest.raises(ValueError):
            median_iqr_curve([make_result([1.0])], 0)
        with pytest.raises(ValueError):
            median_iqr_curve([make_result([1.0])], 3, normalise_to=0.0)
