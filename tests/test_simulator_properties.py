"""Property-based tests of the performance model's physical invariants.

These pin down the simulator's *economics*: relations that must hold for
any workload, because the paper's phenomena (and the optimisers' sanity)
depend on them.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud.pricing import deployment_cost
from repro.cloud.vmtypes import VMType, get_vm_type
from repro.simulator.lowlevel import derive_metrics
from repro.simulator.perfmodel import PerformanceModel
from repro.workloads.spec import ResourceProfile

MODEL = PerformanceModel()


def profiles():
    return st.builds(
        ResourceProfile,
        cpu_seconds=st.floats(1.0, 5000.0),
        parallel_fraction=st.floats(0.0, 1.0),
        working_set_gb=st.floats(0.0, 60.0),
        io_gb=st.floats(0.0, 500.0),
        shuffle_gb=st.floats(0.0, 200.0),
        cpu_gen_sensitivity=st.floats(0.0, 1.0),
    )


def vm_names():
    return st.sampled_from([f"{f}.{s}" for f in ("c3", "c4", "m3", "m4", "r3", "r4")
                            for s in ("large", "xlarge", "2xlarge")])


def _bigger(vm: VMType) -> VMType | None:
    order = ("large", "xlarge", "2xlarge")
    index = order.index(vm.size)
    if index == 2:
        return None
    return get_vm_type(f"{vm.family}.{order[index + 1]}")


class TestMonotonicity:
    @settings(max_examples=60, deadline=None)
    @given(profile=profiles(), vm_name=vm_names())
    def test_scaling_up_within_a_family_never_slows_down(self, profile, vm_name):
        """The next size up has 2x cores, 2x RAM, faster disk: it can never
        be slower (it can fail to be faster for serial workloads)."""
        vm = get_vm_type(vm_name)
        bigger = _bigger(vm)
        if bigger is None:
            return
        assert MODEL.execution_time(bigger, profile) <= MODEL.execution_time(
            vm, profile
        ) * (1 + 1e-9)

    @settings(max_examples=60, deadline=None)
    @given(profile=profiles(), vm_name=vm_names(), factor=st.floats(1.01, 5.0))
    def test_more_io_never_makes_a_run_faster(self, profile, vm_name, factor):
        vm = get_vm_type(vm_name)
        heavier = profile.scaled(io=factor)
        assert MODEL.execution_time(vm, heavier) >= MODEL.execution_time(vm, profile) * (
            1 - 1e-9
        )

    @settings(max_examples=60, deadline=None)
    @given(profile=profiles(), vm_name=vm_names(), factor=st.floats(1.01, 5.0))
    def test_bigger_working_set_never_makes_a_run_faster(self, profile, vm_name, factor):
        vm = get_vm_type(vm_name)
        heavier = profile.scaled(working_set=factor)
        assert MODEL.execution_time(vm, heavier) >= MODEL.execution_time(vm, profile) * (
            1 - 1e-9
        )

    @settings(max_examples=60, deadline=None)
    @given(profile=profiles(), vm_name=vm_names(), factor=st.floats(1.01, 5.0))
    def test_more_cpu_work_never_makes_a_run_faster(self, profile, vm_name, factor):
        vm = get_vm_type(vm_name)
        heavier = profile.scaled(cpu=factor)
        assert MODEL.execution_time(vm, heavier) >= MODEL.execution_time(vm, profile) * (
            1 - 1e-9
        )


class TestCostRelations:
    @settings(max_examples=60, deadline=None)
    @given(profile=profiles(), vm_name=vm_names())
    def test_cost_is_time_times_price(self, profile, vm_name):
        vm = get_vm_type(vm_name)
        time_s = MODEL.execution_time(vm, profile)
        assert deployment_cost(time_s, vm) == pytest.approx(
            time_s * deployment_cost(1.0, vm)
        )

    @settings(max_examples=40, deadline=None)
    @given(profile=profiles())
    def test_scaling_up_can_increase_cost(self, profile):
        """Sizes cost 2x per step; unless the speedup is 2x, cost rises —
        this is why the cheapest-to-run VM is often a small one."""
        small = get_vm_type("c4.large")
        big = get_vm_type("c4.2xlarge")
        t_small = MODEL.execution_time(small, profile)
        t_big = MODEL.execution_time(big, profile)
        c_small = deployment_cost(t_small, small)
        c_big = deployment_cost(t_big, big)
        if t_small / t_big < 3.9:  # speedup below the 4x price ratio
            assert c_big > c_small * 0.999


class TestMetricInvariants:
    @settings(max_examples=60, deadline=None)
    @given(profile=profiles(), vm_name=vm_names())
    def test_metrics_always_within_ranges(self, profile, vm_name):
        vm = get_vm_type(vm_name)
        metrics = derive_metrics(vm, profile, MODEL.breakdown(vm, profile))
        vector = metrics.to_vector()
        assert np.all(np.isfinite(vector))
        assert 0 <= metrics.cpu_user_pct <= 100
        assert 0 <= metrics.cpu_iowait_pct <= 100
        assert 0 <= metrics.mem_commit_pct <= 140
        assert 0 <= metrics.disk_util_pct <= 100
        assert metrics.disk_wait_ms >= 0
        assert metrics.task_count > 0

    @settings(max_examples=60, deadline=None)
    @given(profile=profiles(), vm_name=vm_names())
    def test_mem_commit_tracks_memory_ratio(self, profile, vm_name):
        vm = get_vm_type(vm_name)
        breakdown = MODEL.breakdown(vm, profile)
        metrics = derive_metrics(vm, profile, breakdown)
        expected = min(100.0 * breakdown.memory_ratio, 140.0)
        assert metrics.mem_commit_pct == pytest.approx(expected)

    @settings(max_examples=60, deadline=None)
    @given(profile=profiles(), vm_name=vm_names())
    def test_paging_iff_ratio_above_safe_fraction(self, profile, vm_name):
        from repro.simulator.perfmodel import MEM_SAFE_FRACTION

        vm = get_vm_type(vm_name)
        breakdown = MODEL.breakdown(vm, profile)
        assert breakdown.paging == (breakdown.memory_ratio > MEM_SAFE_FRACTION)
