"""Unit tests for history-augmented BO (the future-work extension)."""

import numpy as np
import pytest

from repro.core.history_bo import (
    HistoryAugmentedBO,
    HistoryModel,
    build_history_pairs,
)

WORKLOAD = "kmeans/Spark 2.1/small"


@pytest.fixture(scope="module")
def history(trace):
    rows, targets = build_history_pairs(
        trace, WORKLOAD, "time", pairs_per_workload=8, seed=0
    )
    return HistoryModel(rows, targets, seed=0)


class TestBuildHistoryPairs:
    def test_excludes_target_workload(self, trace):
        rows, targets = build_history_pairs(
            trace, WORKLOAD, "time", pairs_per_workload=2, seed=0
        )
        assert rows.shape == (2 * 106, 14)
        assert targets.shape == (2 * 106,)

    def test_unknown_workload_rejected(self, trace):
        with pytest.raises(KeyError):
            build_history_pairs(trace, "none/Spark 9/tiny", "time")

    def test_targets_are_log_ratios(self, trace):
        _, targets = build_history_pairs(
            trace, WORKLOAD, "time", pairs_per_workload=50, seed=1
        )
        # Log ratios are signed and centred near zero over random pairs.
        assert targets.min() < 0 < targets.max()
        assert abs(np.mean(targets)) < 1.0

    def test_deterministic_given_seed(self, trace):
        a = build_history_pairs(trace, WORKLOAD, "time", pairs_per_workload=3, seed=7)
        b = build_history_pairs(trace, WORKLOAD, "time", pairs_per_workload=3, seed=7)
        assert np.array_equal(a[0], b[0])
        assert np.array_equal(a[1], b[1])


class TestHistoryModel:
    def test_predicts_transferable_structure(self, trace, history):
        """The prior must know that moving from a paging source to a
        big-memory destination speeds things up (negative log ratio)."""
        from repro.cloud.encoding import InstanceEncoder

        encoder = InstanceEncoder(trace.catalog)
        design = encoder.encode_all()
        paging_metrics = np.array([25.0, 65.0, 4.0, 140.0, 95.0, 60.0])
        src = encoder.index_of("c4.large")
        dst = encoder.index_of("r4.2xlarge")
        row = np.concatenate([design[dst], design[src], paging_metrics])
        predicted_ratio = history.predict(row.reshape(1, -1))[0]
        assert predicted_ratio < 0

    def test_empty_history_rejected(self):
        with pytest.raises(ValueError, match="at least one pair"):
            HistoryModel(np.zeros((0, 14)), np.zeros(0))


class TestHistoryAugmentedBO:
    def test_runs_end_to_end(self, trace, history):
        result = HistoryAugmentedBO(
            trace.environment(WORKLOAD), history=history, seed=0
        ).run()
        assert result.search_cost == 18
        assert result.optimizer == "history-augmented-bo"

    def test_without_history_matches_augmented(self, trace):
        from repro.core.augmented_bo import AugmentedBO

        plain = AugmentedBO(trace.environment(WORKLOAD), seed=3).run()
        no_prior = HistoryAugmentedBO(trace.environment(WORKLOAD), history=None, seed=3).run()
        assert plain.measured_vm_names == no_prior.measured_vm_names

    def test_prior_changes_the_search(self, trace, history):
        from repro.core.augmented_bo import AugmentedBO

        differs = False
        for seed in range(4):
            plain = AugmentedBO(trace.environment(WORKLOAD), seed=seed).run()
            primed = HistoryAugmentedBO(
                trace.environment(WORKLOAD), history=history, seed=seed
            ).run()
            if plain.measured_vm_names != primed.measured_vm_names:
                differs = True
                break
        assert differs

    def test_negative_prior_strength_rejected(self, trace, history):
        with pytest.raises(ValueError, match="prior_strength"):
            HistoryAugmentedBO(
                trace.environment(WORKLOAD), history=history, prior_strength=-1.0
            )

    def test_deterministic_given_seed(self, trace, history):
        a = HistoryAugmentedBO(trace.environment(WORKLOAD), history=history, seed=9).run()
        b = HistoryAugmentedBO(trace.environment(WORKLOAD), history=history, seed=9).run()
        assert a.measured_vm_names == b.measured_vm_names
