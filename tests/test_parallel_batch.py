"""The within-search measurement fan-out over the executor plane.

Exercises :class:`repro.parallel.batch.MeasurementFanout` both directly
(backend plumbing, crash recovery) and end-to-end under a batched
search, asserting the plane's core promise: any backend, any worker
count, bit-identical results.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.analysis.runner import result_to_payload
from repro.core.augmented_bo import AugmentedBO
from repro.faults.models import FaultInjector, parse_fault_plan
from repro.faults.retry import RetryPolicy
from repro.parallel.batch import BATCH_BACKENDS, MeasurementFanout

_MAIN_PID = os.getpid()


def test_backend_validation():
    with pytest.raises(ValueError, match="backend"):
        MeasurementFanout("threads")
    with pytest.raises(ValueError, match="workers"):
        MeasurementFanout("pool", workers=0)
    assert set(BATCH_BACKENDS) == {"serial", "pool"}


def test_serial_backend_runs_inline_in_order():
    fanout = MeasurementFanout("serial")
    seen = []

    def task(cell):
        seen.append(cell)
        return cell * 10

    assert fanout((1, 2, 3), task) == [10, 20, 30]
    assert seen == [1, 2, 3]


def test_pool_backend_returns_every_outcome():
    with MeasurementFanout("pool", workers=2) as fanout:
        outcomes = fanout([1, 2, 3, 4, 5], lambda cell: cell * 10)
    assert sorted(outcomes) == [10, 20, 30, 40, 50]


def test_pool_crash_reruns_inline():
    """A cell whose worker dies is re-run in the parent, not lost."""

    def task(cell):
        if cell == 2 and os.getpid() != _MAIN_PID:
            os._exit(1)  # simulate a worker crash mid-cell
        return cell * 10

    with MeasurementFanout("pool", workers=2) as fanout:
        outcomes = fanout([1, 2, 3], task)
    assert sorted(outcomes) == [10, 20, 30]


def test_pool_error_reruns_inline():
    """A worker-side exception falls back to the parent's inline run."""

    def task(cell):
        if cell == 2 and os.getpid() != _MAIN_PID:
            raise RuntimeError("worker-side failure")
        return cell * 10

    with MeasurementFanout("pool", workers=2) as fanout:
        outcomes = fanout([1, 2, 3], task)
    assert sorted(outcomes) == [10, 20, 30]


def test_single_worker_pool_short_circuits_to_inline():
    fanout = MeasurementFanout("pool", workers=1)
    assert fanout([1, 2], lambda cell: cell + 1) == [2, 3]
    assert fanout._executor is None  # never forked


def _search(trace, workload_id, fanout):
    plan = parse_fault_plan("transient:rate=0.3", seed=3)
    return AugmentedBO(
        FaultInjector(trace.environment(workload_id), plan),
        seed=5,
        batch_size=3,
        retry_policy=RetryPolicy(max_attempts=2, backoff_base_s=0.1),
        measurement_fanout=fanout,
    ).run()


def test_pool_search_bit_identical_to_serial(trace):
    """End-to-end: a forked 2-worker batch search equals the inline one."""
    workload_id = next(iter(trace.registry)).workload_id
    serial = _search(trace, workload_id, MeasurementFanout("serial"))
    with MeasurementFanout("pool", workers=2) as fanout:
        pooled = _search(trace, workload_id, fanout)
    assert pooled == serial
    assert json.dumps(result_to_payload(pooled), sort_keys=True) == json.dumps(
        result_to_payload(serial), sort_keys=True
    )
    assert serial.failure_events  # the plan really injected faults
