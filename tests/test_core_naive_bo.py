"""Unit tests for Naive BO (the CherryPick baseline)."""

import numpy as np
import pytest

from repro.core.naive_bo import GPScorer, NaiveBO
from repro.core.objectives import Objective
from repro.core.stopping import EIThreshold
from repro.ml.kernels import Matern12, Matern52


@pytest.fixture()
def environment(trace):
    return trace.environment("kmeans/Spark 2.1/small")


class TestNaiveBO:
    def test_beats_random_in_median_search_cost(self, trace):
        """On a spread of workloads, Naive BO should reach the optimum in
        fewer measurements than blind luck (median over repeats)."""
        from repro.core.baselines import RandomSearch

        workloads = [w.workload_id for w in trace.registry][::20]
        gains = []
        for workload_id in workloads:
            optimum = trace.objective_values(workload_id, "time").min()
            bo_costs, random_costs = [], []
            for seed in range(5):
                bo = NaiveBO(trace.environment(workload_id), seed=seed).run()
                rand = RandomSearch(trace.environment(workload_id), seed=seed).run()
                bo_costs.append(bo.first_step_reaching(optimum) or 19)
                random_costs.append(rand.first_step_reaching(optimum) or 19)
            gains.append(np.median(random_costs) - np.median(bo_costs))
        assert np.mean(gains) > 0

    def test_exhaustive_run_measures_everything(self, environment):
        result = NaiveBO(environment, seed=0).run()
        assert result.search_cost == 18
        assert result.best_value == pytest.approx(
            min(step.objective_value for step in result.steps)
        )

    def test_deterministic_given_seed(self, trace):
        a = NaiveBO(trace.environment("kmeans/Spark 2.1/small"), seed=5).run()
        b = NaiveBO(trace.environment("kmeans/Spark 2.1/small"), seed=5).run()
        assert a.measured_vm_names == b.measured_vm_names

    def test_different_seeds_use_different_initial_designs(self, trace):
        starts = {
            NaiveBO(trace.environment("kmeans/Spark 2.1/small"), seed=s).run().measured_vm_names[:3]
            for s in range(8)
        }
        assert len(starts) > 1

    def test_kernel_is_configurable(self, environment):
        result = NaiveBO(environment, seed=0, kernel=Matern12()).run()
        assert result.search_cost == 18

    def test_ei_stopping_ends_early(self, trace):
        result = NaiveBO(
            trace.environment("kmeans/Spark 2.1/small"),
            seed=0,
            stopping=EIThreshold(fraction=0.1, min_measurements=6),
        ).run()
        assert result.search_cost < 18
        assert result.stopped_by == "criterion"

    def test_objective_is_respected(self, trace):
        result = NaiveBO(
            trace.environment("kmeans/Spark 2.1/small"),
            objective=Objective.COST,
            seed=0,
        ).run()
        costs = trace.costs_for("kmeans/Spark 2.1/small")
        assert result.best_value == pytest.approx(costs.min())


class TestGPScorer:
    def test_scores_cover_unmeasured_candidates(self, trace):
        design = np.random.default_rng(0).normal(size=(10, 4))
        scorer = GPScorer(design, kernel=Matern52(), seed=0)
        values = np.array([3.0, 1.0, 2.0])
        scores = scorer.score([0, 1, 2], values, [3, 4, 5, 6])
        assert scores.scores.shape == (4,)
        assert scores.predicted is not None
        assert scores.expected_improvements is not None
        assert np.allclose(scores.scores, scores.expected_improvements)

    def test_ei_positive_somewhere_early(self, trace):
        design = np.random.default_rng(1).normal(size=(8, 3))
        scorer = GPScorer(design, seed=0)
        values = np.array([5.0, 4.0])
        scores = scorer.score([0, 1], values, list(range(2, 8)))
        assert scores.scores.max() > 0

    def test_prediction_interpolates_measured_neighbourhood(self):
        """A GP over a smooth synthetic objective predicts a near-duplicate
        candidate close to its measured twin."""
        rng = np.random.default_rng(2)
        design = rng.normal(size=(12, 4))
        design[11] = design[0] + 1e-4
        scorer = GPScorer(design, seed=0)
        values = np.array([10.0, 20.0, 30.0, 40.0, 50.0])
        scores = scorer.score([0, 1, 2, 3, 4], values, [11])
        assert scores.predicted[0] == pytest.approx(10.0, rel=0.2)
