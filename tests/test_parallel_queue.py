"""Durable work queue: lease semantics, crash recovery, executor parity.

Lease mechanics run against an injected fake clock, so expiry and
backoff windows are exact, not slept.  Crash recovery uses real forked
workers and real ``SIGKILL`` — the scenario the queue exists for.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import sqlite3
import threading
import time
from pathlib import Path

import pytest

from repro.analysis.runner import (
    ExperimentRunner,
    RunGrid,
    result_from_payload,
    result_to_payload,
)
from repro.core.baselines import RandomSearch
from repro.core.objectives import Objective
from repro.core.result import SearchResult, SearchStep
from repro.faults import RetryPolicy
from repro.parallel.engine import _fork_available
from repro.parallel.executors import CellExecutor
from repro.parallel.queue import (
    QueueExecutor,
    WorkQueue,
    queue_worker_loop,
)

needs_fork = pytest.mark.skipif(
    not _fork_available(), reason="requires fork start method"
)


def _result(tag: str) -> SearchResult:
    return SearchResult(
        optimizer="scripted",
        objective=Objective.TIME,
        workload_id=tag,
        steps=(SearchStep(step=1, vm_name="vm", objective_value=1.0, best_value=1.0),),
        stopped_by="budget",
    )


class FakeClock:
    def __init__(self, start: float = 1_000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock() -> FakeClock:
    return FakeClock()


@pytest.fixture
def queue(tmp_path, clock):
    work_queue = WorkQueue(
        tmp_path / "grid.queue",
        "grid",
        max_attempts=3,
        lease_duration_s=10.0,
        clock=clock,
    )
    yield work_queue
    work_queue.close()


def _event_kinds(queue) -> list[str]:
    return [kind for _id, kind, _cell, _detail in queue.events_since(0)]


class TestLeaseSemantics:
    def test_concurrent_claimers_get_disjoint_cells(self, queue):
        queue.enqueue([(("a", 0), 1), (("b", 0), 2)])
        first = queue.claim("w1")
        second = queue.claim("w2")
        third = queue.claim("w3")
        assert {first.cell, second.cell} == {("a", 0), ("b", 0)}
        assert third is None

    def test_claim_follows_enqueue_order_and_front_jumps(self, queue):
        queue.enqueue([(("a", 0), 1), (("b", 0), 2)])
        queue.enqueue([(("c", 0), 3)], front=True)
        assert queue.claim("w").cell == ("c", 0)
        assert queue.claim("w").cell == ("a", 0)

    def test_lease_carries_stored_seed_and_attempt(self, queue):
        queue.enqueue([(("a", 0), 42)])
        lease = queue.claim("w")
        assert lease.seed == 42
        assert lease.attempts == 1
        assert lease.owner == "w"
        assert lease.deadline == pytest.approx(queue._clock() + 10.0)

    def test_expired_lease_is_reclaimable_exactly_once(self, queue, clock):
        queue.enqueue([(("a", 0), 1)])
        queue.claim("victim")
        clock.advance(11.0)
        recovered = queue.claim("rescuer")
        assert recovered.cell == ("a", 0)
        assert recovered.attempts == 2  # the lost attempt stays counted
        assert queue.claim("greedy") is None
        kinds = _event_kinds(queue)
        assert kinds.count("lease_expired") == 1
        assert kinds.count("worker_lost") == 1
        assert kinds.count("cell_requeued") == 1

    def test_heartbeat_extends_the_lease(self, queue, clock):
        queue.enqueue([(("a", 0), 1)])
        lease = queue.claim("w")
        clock.advance(8.0)
        assert queue.heartbeat(lease.cell, "w")
        clock.advance(8.0)  # 16s since claim, 8s since heartbeat
        assert queue.sweep_expired() == []
        assert queue.counts()["leased"] == 1

    def test_heartbeat_after_expiry_reports_lease_lost(self, queue, clock):
        queue.enqueue([(("a", 0), 1)])
        lease = queue.claim("w")
        clock.advance(11.0)
        queue.sweep_expired()
        assert not queue.heartbeat(lease.cell, "w")

    def test_attempts_beyond_max_transition_to_poisoned(self, queue, clock):
        queue.enqueue([(("a", 0), 1)])
        for _ in range(3):  # max_attempts=3 workers die holding the lease
            assert queue.claim("doomed") is not None
            clock.advance(11.0)
        queue.sweep_expired()
        assert queue.counts()["poisoned"] == 1
        assert queue.claim("w") is None
        kinds = _event_kinds(queue)
        assert kinds.count("cell_poisoned") == 1
        assert kinds.count("cell_requeued") == 2

    def test_complete_is_guarded_against_lost_leases(self, queue, clock):
        """At-most-once result recording under at-least-once execution."""
        queue.enqueue([(("a", 0), 1)])
        queue.claim("slow")
        clock.advance(11.0)
        queue.claim("fast")
        assert queue.complete(("a", 0), "fast", {"winner": "fast"})
        # The original worker finishes late: its write must be refused.
        assert not queue.complete(("a", 0), "slow", {"winner": "slow"})
        [(cell, state, payload, _error, _attempts)] = queue.terminal_cells()
        assert (cell, state, payload) == (("a", 0), "done", {"winner": "fast"})
        kinds = _event_kinds(queue)
        assert kinds.count("cell_done") == 1  # no double write recorded

    def test_fail_requeues_with_backoff_window(self, queue, clock):
        queue.enqueue([(("a", 0), 1)])
        queue.claim("w")
        assert queue.fail(("a", 0), "w", "RuntimeError: boom", requeue_delay_s=5.0)
        assert queue.claim("w") is None  # still inside the backoff window
        clock.advance(5.0)
        retry = queue.claim("w")
        assert retry.cell == ("a", 0)
        assert retry.attempts == 2

    def test_fail_at_attempt_budget_is_terminal(self, queue, clock):
        queue.enqueue([(("a", 0), 1)])
        for _ in range(3):
            lease = queue.claim("w")
            queue.fail(lease.cell, "w", "RuntimeError: boom")
        [(cell, state, _payload, error, attempts)] = queue.terminal_cells()
        assert (cell, state, attempts) == (("a", 0), "failed", 3)
        assert "boom" in error
        assert "cell_failed" in _event_kinds(queue)

    def test_fail_by_non_owner_is_refused(self, queue):
        queue.enqueue([(("a", 0), 1)])
        queue.claim("w")
        assert not queue.fail(("a", 0), "impostor", "nope")

    def test_enqueue_revives_failed_but_keeps_done(self, queue, clock):
        queue.enqueue([(("a", 0), 1), (("b", 0), 2)])
        lease = queue.claim("w")
        while lease is not None and lease.cell != ("a", 0):
            lease = queue.claim("w")
        queue.complete(("a", 0), "w", {"kept": True})
        b = queue.claim("w")
        for _ in range(3):
            if b is not None:
                queue.fail(b.cell, "w", "RuntimeError: boom")
            b = queue.claim("w")
        counts = queue.counts()
        assert counts["done"] == 1 and counts["failed"] == 1
        touched = queue.enqueue([(("a", 0), 1), (("b", 0), 2)])
        assert touched == 1  # only the failed row revived
        assert queue.counts() == {
            "pending": 1, "leased": 0, "done": 1, "failed": 0, "poisoned": 0,
        }
        retry = queue.claim("w")
        assert retry.cell == ("b", 0)
        assert retry.attempts == 1  # revival resets the attempt budget

    def test_enqueue_leaves_live_leases_alone(self, queue):
        queue.enqueue([(("a", 0), 1)])
        queue.claim("w")
        assert queue.enqueue([(("a", 0), 9)]) == 0
        assert queue.counts()["leased"] == 1

    def test_expire_owner_recovers_known_dead_worker_immediately(self, queue):
        queue.enqueue([(("a", 0), 1)])
        queue.claim("dead")
        [(cell, state, attempts, owner)] = queue.expire_owner("dead")
        assert (cell, state, owner) == (("a", 0), "pending", "dead")
        assert queue.claim("w").attempts == 2

    def test_reconcile_marks_cached_cells_done(self, queue, clock):
        queue.enqueue([(("a", 0), 1), (("b", 0), 2)])
        queue.claim("w")  # one leased, one pending — an interrupted run
        changed = queue.reconcile([("a", 0), ("b", 0), ("c", 0)])
        assert changed == 3  # both rows plus the upserted missing one
        assert queue.counts()["done"] == 3
        assert queue.drained()
        assert queue.claim("w") is None
        assert _event_kinds(queue).count("cell_reconciled") == 3
        # Re-reconciling is idempotent.
        assert queue.reconcile([("a", 0)]) == 0

    def test_reconcile_keeps_stored_results(self, queue):
        queue.enqueue([(("a", 0), 1)])
        queue.claim("w")
        queue.complete(("a", 0), "w", {"payload": 1})
        queue.reconcile([("a", 0)])
        [(_cell, state, payload, _error, _attempts)] = queue.terminal_cells()
        assert state == "done" and payload == {"payload": 1}

    def test_status_readers(self, queue, clock):
        queue.enqueue([(("a", 0), 1), (("b", 0), 2), (("c", 0), 3)])
        queue.claim("w1")
        clock.advance(2.0)
        assert not queue.drained()
        counts = queue.counts()
        assert counts["pending"] == 2 and counts["leased"] == 1
        [(cell, owner, attempts, beat_age, expires_in)] = queue.leases()
        assert owner == "w1" and attempts == 1
        assert beat_age == pytest.approx(2.0)
        assert expires_in == pytest.approx(8.0)
        assert queue.attempt_histogram() == {1: 1}


class TestDurability:
    def test_attach_adopts_recorded_parameters(self, tmp_path, clock):
        with WorkQueue(
            tmp_path / "g.queue", "key", max_attempts=5,
            lease_duration_s=7.5, clock=clock,
        ) as queue:
            queue.enqueue([(("a", 0), 1)])
        attached = WorkQueue.attach(tmp_path / "g.queue")
        try:
            assert attached.cache_key == "key"
            assert attached.max_attempts == 5
            assert attached.lease_duration_s == 7.5
            assert attached.counts()["pending"] == 1
        finally:
            attached.close()

    def test_open_with_wrong_grid_key_is_refused(self, tmp_path, clock):
        WorkQueue(tmp_path / "g.queue", "key", clock=clock).close()
        with pytest.raises(ValueError, match="belongs to grid"):
            WorkQueue(tmp_path / "g.queue", "other-key", clock=clock)

    def test_attach_missing_file_is_refused(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            WorkQueue.attach(tmp_path / "absent.queue")

    def test_attach_non_queue_file_is_refused(self, tmp_path):
        bogus = tmp_path / "bogus.queue"
        con = sqlite3.connect(bogus)
        con.execute("CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT NOT NULL)")
        con.commit()
        con.close()
        with pytest.raises(ValueError, match="schema"):
            WorkQueue.attach(bogus)

    def test_readonly_attach_reads_while_writer_lives(self, tmp_path, clock):
        with WorkQueue(tmp_path / "g.queue", "key", clock=clock) as queue:
            queue.enqueue([(("a", 0), 1)])
            reader = WorkQueue.attach(tmp_path / "g.queue", readonly=True)
            try:
                assert reader.counts()["pending"] == 1
                assert reader.readonly
            finally:
                reader.close()

    def test_remove_deletes_database_and_sidecars(self, tmp_path, clock):
        path = tmp_path / "g.queue"
        with WorkQueue(path, "key", clock=clock) as queue:
            queue.enqueue([(("a", 0), 1)])
        WorkQueue.remove(path)
        assert not path.exists()
        assert not path.with_name("g.queue-wal").exists()

    def test_state_survives_reopen(self, tmp_path, clock):
        path = tmp_path / "g.queue"
        with WorkQueue(path, "key", clock=clock) as queue:
            queue.enqueue([(("a", 0), 1), (("b", 0), 2)])
            queue.claim("w")
        reopened = WorkQueue.attach(path, clock=clock)
        try:
            counts = reopened.counts()
            assert counts["pending"] == 1 and counts["leased"] == 1
        finally:
            reopened.close()

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError, match="max_attempts"):
            WorkQueue(tmp_path / "a.queue", "k", max_attempts=0)
        with pytest.raises(ValueError, match="lease_duration_s"):
            WorkQueue(tmp_path / "b.queue", "k", lease_duration_s=0.0)


def _claim_hammer(path: str, owner: str, out_path: str) -> None:
    queue = WorkQueue.attach(path)
    claimed = []
    try:
        while True:
            lease = queue.claim(owner)
            if lease is None:
                break
            claimed.append([lease.workload_id, lease.repeat])
        Path(out_path).write_text(json.dumps(claimed))
    finally:
        queue.close()


@needs_fork
class TestConcurrentClaims:
    def test_processes_hammering_claim_never_double_claim(self, tmp_path):
        path = tmp_path / "g.queue"
        cells = [(("w", index), index) for index in range(40)]
        with WorkQueue(path, "key", lease_duration_s=60.0) as queue:
            queue.enqueue(cells)
        ctx = multiprocessing.get_context("fork")
        outs = [tmp_path / f"claims-{index}.json" for index in range(4)]
        workers = [
            ctx.Process(
                target=_claim_hammer, args=(str(path), f"w{index}", str(out))
            )
            for index, out in enumerate(outs)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=30.0)
            assert worker.exitcode == 0
        claimed = [
            tuple(cell)
            for out in outs
            for cell in json.loads(out.read_text())
        ]
        assert len(claimed) == 40  # every cell claimed...
        assert len(set(claimed)) == 40  # ...exactly once


class TestWorkerLoop:
    def test_completes_cells_with_round_tripping_payloads(self, tmp_path):
        with WorkQueue(tmp_path / "g.queue", "key", lease_duration_s=30.0) as queue:
            queue.enqueue([(("a", 0), 11), (("b", 1), 22)])
            done = queue_worker_loop(
                queue, lambda lease: _result(f"{lease.workload_id}-{lease.seed}"),
                owner="w",
            )
            assert done == 2
            terminal = dict(
                (cell, payload)
                for cell, state, payload, _e, _a in queue.terminal_cells()
                if state == "done"
            )
            assert terminal[("a", 0)] == result_to_payload(_result("a-11"))
            decoded = result_from_payload(
                terminal[("b", 1)], Objective.TIME, "b-22"
            )
            assert decoded == _result("b-22")

    def test_application_error_requeues_then_parks_failed(self, tmp_path):
        with WorkQueue(
            tmp_path / "g.queue", "key", max_attempts=2, lease_duration_s=30.0
        ) as queue:
            queue.enqueue([(("doomed", 0), 1)])

            def explode(lease):
                raise RuntimeError(f"attempt {lease.attempts}")

            done = queue_worker_loop(
                queue, explode, owner="w",
                requeue_policy=RetryPolicy(max_attempts=2),
            )
            assert done == 2  # both attempts processed by this worker
            [(cell, state, _p, error, attempts)] = queue.terminal_cells()
            assert state == "failed" and attempts == 2
            assert "attempt 2" in error
            kinds = _event_kinds(queue)
            assert "cell_requeued" in kinds and "cell_failed" in kinds

    def test_max_cells_bounds_the_loop(self, tmp_path):
        with WorkQueue(tmp_path / "g.queue", "key") as queue:
            queue.enqueue([(("a", 0), 1), (("b", 0), 2), (("c", 0), 3)])
            done = queue_worker_loop(
                queue, lambda lease: _result("x"), owner="w", max_cells=2
            )
            assert done == 2
            assert queue.counts()["pending"] == 1

    def test_should_stop_halts_before_claiming(self, tmp_path):
        with WorkQueue(tmp_path / "g.queue", "key") as queue:
            queue.enqueue([(("a", 0), 1)])
            done = queue_worker_loop(
                queue, lambda lease: _result("x"), owner="w",
                should_stop=lambda: True,
            )
            assert done == 0
            assert queue.counts()["pending"] == 1


def _suicidal_worker_main(path: str) -> None:
    """A real worker that SIGKILLs itself mid-cell on the first attempt."""
    queue = WorkQueue.attach(path)

    def run_lease(lease):
        if lease.workload_id == "die" and lease.attempts == 1:
            os.kill(os.getpid(), signal.SIGKILL)
        return _result(f"{lease.workload_id}-{lease.seed}")

    try:
        queue_worker_loop(queue, run_lease, owner="victim")
    finally:
        queue.close()


@needs_fork
class TestSigkillRecovery:
    def test_killed_workers_cell_recovers_with_identical_payload(self, tmp_path):
        path = tmp_path / "g.queue"
        with WorkQueue(path, "key", lease_duration_s=1.0) as queue:
            queue.enqueue([(("die", 0), 7), (("ok", 0), 8)])
            ctx = multiprocessing.get_context("fork")
            victim = ctx.Process(target=_suicidal_worker_main, args=(str(path),))
            victim.start()
            victim.join(timeout=30.0)
            assert victim.exitcode == -signal.SIGKILL  # died mid-cell

            # A rescuer drains the queue: it waits out the dead worker's
            # lease, requeues the cell, and computes the identical result
            # from the stored seed.
            done = queue_worker_loop(
                queue, lambda lease: _result(f"{lease.workload_id}-{lease.seed}"),
                owner="rescuer",
            )
            assert done >= 1
            terminal = {
                cell: (state, payload)
                for cell, state, payload, _e, _a in queue.terminal_cells()
            }
            assert terminal[("die", 0)] == (
                "done", result_to_payload(_result("die-7"))
            )
            assert terminal[("ok", 0)] == (
                "done", result_to_payload(_result("ok-8"))
            )
            kinds = _event_kinds(queue)
            assert kinds.count("lease_expired") == 1
            assert kinds.count("worker_lost") == 1
            assert kinds.count("cell_requeued") == 1
            # No cell's result was recorded twice.
            done_cells = [
                cell
                for _id, kind, cell, _detail in queue.events_since(0)
                if kind == "cell_done"
            ]
            assert sorted(done_cells) == [("die", 0), ("ok", 0)]


class TestQueueExecutor:
    def _executor(self, tmp_path, **kwargs):
        kwargs.setdefault("workers", 0)
        kwargs.setdefault("stall_timeout_s", None)
        return QueueExecutor(
            tmp_path / "g.queue",
            "key",
            lambda cell: _result(cell[0]),
            Objective.TIME,
            lambda workload_id, repeat: repeat,
            poll_tick_s=0.01,
            **kwargs,
        )

    def test_protocol_conformance(self, tmp_path):
        executor = self._executor(tmp_path)
        try:
            assert isinstance(executor, CellExecutor)
            assert not QueueExecutor.supports_cancel
            assert executor.started_at(("a", 0)) is None
        finally:
            executor.shutdown()

    def test_external_worker_feeds_ok_outcomes(self, tmp_path):
        events = []
        executor = self._executor(tmp_path, on_event=events.append)
        try:
            executor.submit(("a", 0))
            executor.submit(("b", 1))

            def serve():
                queue = WorkQueue.attach(tmp_path / "g.queue")
                try:
                    queue_worker_loop(
                        queue,
                        lambda lease: _result(lease.workload_id),
                        owner="external",
                    )
                finally:
                    queue.close()

            worker = threading.Thread(target=serve, daemon=True)
            worker.start()
            outcomes = []
            deadline = time.monotonic() + 30.0
            while len(outcomes) < 2 and time.monotonic() < deadline:
                outcomes.extend(executor.poll(0.2))
            worker.join(timeout=10.0)
            by_cell = {o.cell: o for o in outcomes}
            assert by_cell[("a", 0)].result == _result("a")
            assert by_cell[("b", 1)].result == _result("b")
            assert "lease_claimed" in [e.kind for e in events]
        finally:
            executor.shutdown()

    def test_stall_takeover_reports_remaining_cells_as_crashed(self, tmp_path):
        events = []
        executor = self._executor(
            tmp_path, stall_timeout_s=0.2, on_event=events.append
        )
        try:
            executor.submit(("a", 0))
            executor.submit(("b", 0))
            outcomes = executor.poll(10.0)
            assert sorted(o.cell for o in outcomes) == [("a", 0), ("b", 0)]
            assert all(o.crashed for o in outcomes)
            assert [e.kind for e in events].count("queue_stalled") == 1
            assert executor.poll(0) == []  # takeover happens once
        finally:
            executor.shutdown()

    def test_resolve_serial_persists_coordinator_results(self, tmp_path):
        executor = self._executor(tmp_path)
        try:
            executor.submit(("a", 0))
            executor.resolve_serial(("a", 0), _result("a"))
            [(cell, state, payload, _e, _a)] = executor.queue.terminal_cells()
            assert (cell, state) == (("a", 0), "done")
            assert payload == result_to_payload(_result("a"))
            assert executor.queue.drained()
        finally:
            executor.shutdown()

    def test_cancel_withdraws_pending_not_leased(self, tmp_path):
        executor = self._executor(tmp_path)
        try:
            executor.submit(("a", 0))
            assert executor.cancel(("a", 0))
            assert not executor.cancel(("a", 0))
        finally:
            executor.shutdown()

    @needs_fork
    def test_local_workers_drain_the_grid(self, tmp_path):
        executor = self._executor(tmp_path, workers=2, stall_timeout_s=30.0)
        try:
            cells = [("w", index) for index in range(6)]
            for cell in cells:
                executor.submit(cell)
            outcomes = []
            deadline = time.monotonic() + 60.0
            while len(outcomes) < 6 and time.monotonic() < deadline:
                outcomes.extend(executor.poll(0.2))
            assert sorted(o.cell for o in outcomes) == cells
            assert all(o.ok for o in outcomes)
        finally:
            executor.shutdown()


WORKLOADS = ("kmeans/Spark 2.1/small", "lr/Spark 1.5/medium")


def random_factory(environment, objective, seed):
    return RandomSearch(
        environment, objective=objective, seed=seed, max_measurements=6
    )


def _grid(key: str) -> RunGrid:
    return RunGrid(
        key=key,
        factory=random_factory,
        objective=Objective.TIME,
        workload_ids=WORKLOADS,
        repeats=3,
    )


@needs_fork
class TestRunnerIntegration:
    def test_queue_cache_byte_identical_to_serial(self, trace, tmp_path):
        serial = ExperimentRunner(trace, cache_dir=tmp_path / "serial")
        serial.run(_grid("queue-parity"))
        queued = ExperimentRunner(trace, cache_dir=tmp_path / "queued")
        events = []
        queued.run(
            _grid("queue-parity"),
            workers=2,
            executor="queue",
            on_event=events.append,
            queue_lease_s=15.0,
        )
        serial_bytes = (tmp_path / "serial" / "queue-parity__time.json").read_bytes()
        queued_bytes = (tmp_path / "queued" / "queue-parity__time.json").read_bytes()
        assert serial_bytes == queued_bytes
        kinds = [event.kind for event in events]
        assert kinds.count("lease_claimed") == 6
        assert kinds.count("cell_finished") == 6
        # The queue database survives the clean run as the persisted
        # robustness record.
        queue_path = tmp_path / "queued" / "queue-parity__time.queue"
        assert queue_path.exists()
        with WorkQueue.attach(queue_path) as queue:
            assert queue.counts()["done"] == 6

    def test_resume_reconciles_queue_against_cache(self, trace, tmp_path):
        runner = ExperimentRunner(trace, cache_dir=tmp_path / "cache")
        runner.run(_grid("queue-rec"), executor="queue", workers=1)
        queue_path = tmp_path / "cache" / "queue-rec__time.queue"
        # Simulate an interrupted run's leftovers: rows knocked back to
        # pending/leased even though the cache holds every result.
        con = sqlite3.connect(queue_path)
        con.execute(
            "UPDATE cells SET state='pending', result=NULL, attempts=2"
        )
        con.commit()
        con.close()
        events = []
        runner.run(
            _grid("queue-rec"),
            executor="queue",
            resume=True,
            on_event=events.append,
        )
        kinds = [event.kind for event in events]
        assert kinds.count("cell_cached") == 6  # nothing recomputed
        assert "lease_claimed" not in kinds  # nothing re-leased
        with WorkQueue.attach(queue_path) as queue:
            assert queue.counts()["done"] == 6

    def test_fresh_run_discards_stale_queue(self, trace, tmp_path):
        cache_dir = tmp_path / "cache"
        cache_dir.mkdir()
        queue_path = cache_dir / "queue-fresh__time.queue"
        with WorkQueue(queue_path, "queue-fresh__time") as stale:
            stale.enqueue([(("bogus", 99), 1)])
        runner = ExperimentRunner(trace, cache_dir=cache_dir)
        runner.run(_grid("queue-fresh"), executor="queue", workers=1)
        with WorkQueue.attach(queue_path) as queue:
            counts = queue.counts()
            assert counts["done"] == 6
            assert counts["pending"] == 0  # the bogus row is gone

    def test_foreign_queue_is_replaced_on_resume(self, trace, tmp_path):
        cache_dir = tmp_path / "cache"
        cache_dir.mkdir()
        queue_path = cache_dir / "queue-foreign__time.queue"
        WorkQueue(queue_path, "some-other-grid").close()
        runner = ExperimentRunner(trace, cache_dir=cache_dir)
        runner.run(_grid("queue-foreign"), executor="queue", workers=1, resume=True)
        with WorkQueue.attach(queue_path) as queue:
            assert queue.cache_key == "queue-foreign__time"
            assert queue.counts()["done"] == 6

    def test_queue_requires_cache_dir(self, trace):
        runner = ExperimentRunner(trace, cache_dir=None)
        with pytest.raises(ValueError, match="cache_dir"):
            runner.run(_grid("queue-nocache"), executor="queue")

    def test_unknown_executor_rejected(self, trace, tmp_path):
        runner = ExperimentRunner(trace, cache_dir=tmp_path)
        with pytest.raises(ValueError, match="executor"):
            runner.run(_grid("queue-bad"), executor="carrier-pigeon")
