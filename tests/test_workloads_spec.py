"""Unit tests for workload specs and resource profiles."""

import pytest

from repro.workloads.spec import (
    Category,
    Framework,
    InputSize,
    ResourceProfile,
    Workload,
)


def make_profile(**overrides):
    base = dict(
        cpu_seconds=100.0,
        parallel_fraction=0.8,
        working_set_gb=4.0,
        io_gb=10.0,
        shuffle_gb=5.0,
        cpu_gen_sensitivity=0.5,
    )
    base.update(overrides)
    return ResourceProfile(**base)


class TestResourceProfileValidation:
    def test_valid_profile_constructs(self):
        profile = make_profile()
        assert profile.cpu_seconds == 100.0

    @pytest.mark.parametrize("cpu", [0.0, -5.0])
    def test_rejects_non_positive_cpu(self, cpu):
        with pytest.raises(ValueError, match="cpu_seconds"):
            make_profile(cpu_seconds=cpu)

    @pytest.mark.parametrize("fraction", [-0.1, 1.1])
    def test_rejects_out_of_range_parallel_fraction(self, fraction):
        with pytest.raises(ValueError, match="parallel_fraction"):
            make_profile(parallel_fraction=fraction)

    @pytest.mark.parametrize("field", ["working_set_gb", "io_gb", "shuffle_gb"])
    def test_rejects_negative_volumes(self, field):
        with pytest.raises(ValueError, match=field):
            make_profile(**{field: -1.0})

    @pytest.mark.parametrize("sens", [-0.01, 1.01])
    def test_rejects_out_of_range_gen_sensitivity(self, sens):
        with pytest.raises(ValueError, match="cpu_gen_sensitivity"):
            make_profile(cpu_gen_sensitivity=sens)

    def test_boundary_values_accepted(self):
        make_profile(parallel_fraction=0.0, cpu_gen_sensitivity=1.0)
        make_profile(parallel_fraction=1.0, working_set_gb=0.0, io_gb=0.0, shuffle_gb=0.0)


class TestProfileScaling:
    def test_scaled_multiplies_named_axes(self):
        scaled = make_profile().scaled(cpu=2.0, working_set=3.0, io=0.5, shuffle=4.0)
        assert scaled.cpu_seconds == pytest.approx(200.0)
        assert scaled.working_set_gb == pytest.approx(12.0)
        assert scaled.io_gb == pytest.approx(5.0)
        assert scaled.shuffle_gb == pytest.approx(20.0)

    def test_scaled_preserves_fractions(self):
        scaled = make_profile().scaled(cpu=5.0)
        assert scaled.parallel_fraction == 0.8
        assert scaled.cpu_gen_sensitivity == 0.5

    def test_scaled_returns_new_object(self):
        profile = make_profile()
        assert profile.scaled() is not profile
        assert profile.scaled() == profile


class TestWorkload:
    def test_workload_id_format(self):
        workload = Workload(
            application="als",
            framework=Framework.SPARK_21,
            input_size=InputSize.MEDIUM,
            category=Category.MACHINE_LEARNING,
            profile=make_profile(),
        )
        assert workload.workload_id == "als/Spark 2.1/medium"
        assert str(workload) == workload.workload_id

    def test_enums_stringify_to_paper_names(self):
        assert str(Framework.HADOOP_27) == "Hadoop 2.7"
        assert str(InputSize.LARGE) == "large"
        assert str(Category.OLAP) == "OLAP"

    def test_workloads_are_frozen(self):
        workload = Workload(
            "sort", Framework.HADOOP_27, InputSize.SMALL, Category.MICRO, make_profile()
        )
        with pytest.raises(AttributeError):
            workload.application = "terasort"  # type: ignore[misc]
