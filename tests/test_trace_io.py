"""Unit tests for trace persistence."""

import json

import numpy as np
import pytest

from repro.trace.generate import generate_trace
from repro.trace.io import load_trace, save_trace


@pytest.fixture(scope="module")
def small_trace():
    return generate_trace(seed=99)


class TestRoundtrip:
    def test_save_load_is_identity(self, small_trace, tmp_path):
        path = tmp_path / "trace.json"
        save_trace(small_trace, path)
        loaded = load_trace(path)
        assert np.array_equal(loaded.times, small_trace.times)
        assert np.array_equal(loaded.costs, small_trace.costs)
        assert np.array_equal(loaded.metrics, small_trace.metrics)
        assert loaded.seed == small_trace.seed

    def test_loaded_trace_is_fully_functional(self, small_trace, tmp_path):
        path = tmp_path / "trace.json"
        save_trace(small_trace, path)
        loaded = load_trace(path)
        workload = loaded.registry.workloads[0]
        assert loaded.best_vm(workload, "cost").name == small_trace.best_vm(
            workload, "cost"
        ).name

    def test_file_is_valid_json(self, small_trace, tmp_path):
        path = tmp_path / "trace.json"
        save_trace(small_trace, path)
        document = json.loads(path.read_text())
        assert document["format_version"] == 1
        assert len(document["workloads"]) == 107
        assert len(document["vms"]) == 18


class TestValidation:
    def _corrupt(self, small_trace, tmp_path, mutate):
        path = tmp_path / "trace.json"
        save_trace(small_trace, path)
        document = json.loads(path.read_text())
        mutate(document)
        path.write_text(json.dumps(document))
        return path

    def test_wrong_format_version_rejected(self, small_trace, tmp_path):
        path = self._corrupt(
            small_trace, tmp_path, lambda d: d.update(format_version=2)
        )
        with pytest.raises(ValueError, match="format version"):
            load_trace(path)

    def test_mismatched_workloads_rejected(self, small_trace, tmp_path):
        def mutate(d):
            d["workloads"][0] = "other/Spark 2.1/small"

        path = self._corrupt(small_trace, tmp_path, mutate)
        with pytest.raises(ValueError, match="workload ids"):
            load_trace(path)

    def test_mismatched_vms_rejected(self, small_trace, tmp_path):
        def mutate(d):
            d["vms"][0] = "c5.large"

        path = self._corrupt(small_trace, tmp_path, mutate)
        with pytest.raises(ValueError, match="VM names"):
            load_trace(path)

    def test_mismatched_metric_names_rejected(self, small_trace, tmp_path):
        def mutate(d):
            d["metric_names"][0] = "cpu_steal_pct"

        path = self._corrupt(small_trace, tmp_path, mutate)
        with pytest.raises(ValueError, match="metric names"):
            load_trace(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_trace(tmp_path / "absent.json")
