"""Unit and property tests for the extremely-randomised regression tree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.ml.tree import RegressionTree


@pytest.fixture(scope="module")
def step_data():
    rng = np.random.default_rng(0)
    X = rng.uniform(0, 1, size=(200, 3))
    y = np.where(X[:, 0] > 0.5, 10.0, 0.0) + np.where(X[:, 1] > 0.3, 5.0, 0.0)
    return X, y


class TestFitPredict:
    def test_fits_step_function(self, step_data):
        X, y = step_data
        tree = RegressionTree(seed=1).fit(X, y)
        rmse = np.sqrt(np.mean((tree.predict(X) - y) ** 2))
        assert rmse < 1.0

    def test_pure_leaves_memorise_training_data(self, step_data):
        X, y = step_data
        tree = RegressionTree(seed=2, min_samples_split=2).fit(X, y)
        assert np.allclose(tree.predict(X), y)

    def test_constant_targets_give_root_only_tree(self):
        X = np.random.default_rng(0).normal(size=(20, 3))
        tree = RegressionTree(seed=0).fit(X, np.full(20, 7.0))
        assert tree.node_count == 1
        assert tree.depth() == 0
        assert np.allclose(tree.predict(X), 7.0)

    def test_constant_features_give_root_only_tree(self):
        X = np.ones((10, 2))
        tree = RegressionTree(seed=0).fit(X, np.arange(10.0))
        assert tree.node_count == 1
        assert tree.predict(X)[0] == pytest.approx(4.5)

    def test_max_depth_respected(self, step_data):
        X, y = step_data
        tree = RegressionTree(seed=0, max_depth=3).fit(X, y)
        assert tree.depth() <= 3

    def test_min_samples_split_respected(self, step_data):
        X, y = step_data
        deep = RegressionTree(seed=0, min_samples_split=2).fit(X, y)
        shallow = RegressionTree(seed=0, min_samples_split=50).fit(X, y)
        assert shallow.node_count < deep.node_count

    def test_max_features_limits_split_candidates(self, step_data):
        X, y = step_data
        tree = RegressionTree(seed=0, max_features=1).fit(X, y)
        assert tree.node_count > 1  # still splits, just on fewer candidates

    def test_predictions_are_training_value_means(self):
        """Every prediction must be a mean of some training subset, hence
        within [y.min(), y.max()]."""
        rng = np.random.default_rng(4)
        X = rng.normal(size=(50, 4))
        y = rng.normal(size=50)
        tree = RegressionTree(seed=0).fit(X, y)
        queries = rng.normal(size=(500, 4)) * 10
        predictions = tree.predict(queries)
        assert predictions.min() >= y.min() - 1e-12
        assert predictions.max() <= y.max() + 1e-12

    def test_single_row_prediction_shape(self, step_data):
        X, y = step_data
        tree = RegressionTree(seed=0).fit(X, y)
        assert tree.predict(X[0]).shape == (1,)

    def test_deterministic_given_seed(self, step_data):
        X, y = step_data
        a = RegressionTree(seed=42).fit(X, y).predict(X)
        b = RegressionTree(seed=42).fit(X, y).predict(X)
        assert np.array_equal(a, b)


class TestValidation:
    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError, match="fitted"):
            RegressionTree().predict(np.zeros((1, 2)))

    def test_depth_before_fit_raises(self):
        with pytest.raises(RuntimeError, match="fitted"):
            RegressionTree().depth()

    def test_empty_fit_raises(self):
        with pytest.raises(ValueError, match="zero observations"):
            RegressionTree().fit(np.zeros((0, 2)), np.zeros(0))

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError, match="rows"):
            RegressionTree().fit(np.zeros((3, 2)), np.zeros(5))

    def test_invalid_hyperparameters_rejected(self):
        with pytest.raises(ValueError):
            RegressionTree(min_samples_split=1)
        with pytest.raises(ValueError):
            RegressionTree(max_depth=0)


class TestProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        data=hnp.arrays(
            dtype=float,
            shape=st.tuples(st.integers(1, 40), st.integers(1, 4)),
            elements=st.floats(-100, 100, allow_nan=False),
        ),
        seed=st.integers(0, 1000),
    )
    def test_training_predictions_bounded_by_targets(self, data, seed):
        rng = np.random.default_rng(seed)
        y = rng.normal(size=data.shape[0])
        tree = RegressionTree(seed=seed).fit(data, y)
        predictions = tree.predict(data)
        assert predictions.min() >= y.min() - 1e-9
        assert predictions.max() <= y.max() + 1e-9

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 1000), n=st.integers(2, 60))
    def test_full_growth_memorises_unique_rows(self, seed, n):
        rng = np.random.default_rng(seed)
        X = rng.uniform(size=(n, 2))
        y = rng.normal(size=n)
        tree = RegressionTree(seed=seed, min_samples_split=2).fit(X, y)
        assert np.allclose(tree.predict(X), y, atol=1e-9)
