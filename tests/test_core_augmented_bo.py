"""Unit tests for Augmented BO (the paper's method)."""

import numpy as np
import pytest

from repro.core.augmented_bo import AugmentedBO, PairwiseTreeScorer
from repro.core.objectives import Objective
from repro.core.stopping import PredictionDeltaThreshold
from repro.simulator.cluster import Measurement
from repro.simulator.lowlevel import LowLevelMetrics


@pytest.fixture()
def environment(trace):
    return trace.environment("kmeans/Spark 2.1/small")


class TestAugmentedBO:
    def test_exhaustive_run_measures_everything(self, environment):
        result = AugmentedBO(environment, seed=0).run()
        assert result.search_cost == 18
        assert result.stopped_by == "exhausted"

    def test_deterministic_given_seed(self, trace):
        a = AugmentedBO(trace.environment("kmeans/Spark 2.1/small"), seed=4).run()
        b = AugmentedBO(trace.environment("kmeans/Spark 2.1/small"), seed=4).run()
        assert a.measured_vm_names == b.measured_vm_names

    def test_delta_stopping_ends_early(self, trace):
        result = AugmentedBO(
            trace.environment("kmeans/Spark 2.1/small"),
            seed=0,
            stopping=PredictionDeltaThreshold(threshold=1.1),
        ).run()
        assert result.search_cost < 18
        assert result.stopped_by == "criterion"

    def test_finds_optimum_within_half_the_space_usually(self, trace):
        """On the memory-cliff workload the low-level signal is strongest;
        Augmented BO should reach the optimum within 9 measurements in the
        majority of repeats."""
        workload_id = "lr/Spark 1.5/medium"
        optimum = trace.objective_values(workload_id, "time").min()
        costs = []
        for seed in range(7):
            result = AugmentedBO(trace.environment(workload_id), seed=seed).run()
            costs.append(result.first_step_reaching(optimum) or 19)
        assert np.median(costs) <= 9

    def test_cost_objective_supported(self, trace):
        result = AugmentedBO(
            trace.environment("kmeans/Spark 2.1/small"),
            objective=Objective.COST,
            seed=0,
        ).run()
        assert result.best_value == pytest.approx(
            trace.costs_for("kmeans/Spark 2.1/small").min()
        )

    def test_absolute_target_mode_supported(self, environment):
        result = AugmentedBO(environment, seed=0, relational=False).run()
        assert result.search_cost == 18


class TestPairwiseTreeScorer:
    def make_measurement(self, trace, workload_id, vm_index):
        return trace.measurement(workload_id, trace.catalog[vm_index])

    def test_training_set_is_all_ordered_pairs(self):
        design = np.arange(20.0).reshape(5, 4)
        scorer = PairwiseTreeScorer(design, seed=0)
        metrics = np.random.default_rng(0).uniform(size=(3, 6))
        X, y = scorer._training_set([0, 1, 2], np.log([1.0, 2.0, 3.0]), metrics)
        assert X.shape == (9, 4 + 4 + 6)  # 3 sources x 3 destinations
        assert y.shape == (9,)

    def test_relational_targets_are_log_ratios(self):
        design = np.arange(20.0).reshape(5, 4)
        scorer = PairwiseTreeScorer(design, seed=0, relational=True)
        metrics = np.zeros((2, 6))
        log_values = np.log([10.0, 40.0])
        _, y = scorer._training_set([0, 1], log_values, metrics)
        # Order: (src0->dst0), (src0->dst1), (src1->dst0), (src1->dst1).
        assert y == pytest.approx([0.0, np.log(4.0), -np.log(4.0), 0.0])

    def test_identity_pairs_have_zero_ratio(self):
        design = np.arange(12.0).reshape(3, 4)
        scorer = PairwiseTreeScorer(design, seed=0, relational=True)
        _, y = scorer._training_set([0, 1, 2], np.log([5.0, 6.0, 7.0]), np.zeros((3, 6)))
        assert y[0] == y[4] == y[8] == 0.0

    def test_pair_row_layout(self):
        design = np.arange(8.0).reshape(2, 4)
        scorer = PairwiseTreeScorer(design, seed=0)
        metrics = np.full(6, 9.0)
        row = scorer._pair_row(dest=1, source=0, source_metrics=metrics)
        assert row.tolist() == design[1].tolist() + design[0].tolist() + [9.0] * 6

    def test_prediction_averages_over_sources(self, trace):
        workload_id = "kmeans/Spark 2.1/small"
        design = np.random.default_rng(1).normal(size=(18, 4))
        scorer = PairwiseTreeScorer(design, seed=0)
        measured = [0, 5, 10]
        values = np.array(
            [trace.times[trace.row_of(workload_id), i] for i in measured]
        )
        measurements = [self.make_measurement(trace, workload_id, i) for i in measured]
        scores = scorer.score(measured, values, measurements, [1, 2, 3])
        assert scores.predicted.shape == (3,)
        assert np.all(scores.predicted > 0)  # log-space averaging stays positive

    def test_scores_are_negated_predictions(self, trace):
        workload_id = "kmeans/Spark 2.1/small"
        design = np.random.default_rng(2).normal(size=(18, 4))
        scorer = PairwiseTreeScorer(design, seed=0)
        measured = [0, 9]
        values = np.array([100.0, 200.0])
        measurements = [self.make_measurement(trace, workload_id, i) for i in measured]
        scores = scorer.score(measured, values, measurements, [3, 4])
        assert np.allclose(scores.scores, -scores.predicted)


class TestLowLevelSignalIsUsed:
    def test_metrics_change_predictions(self, trace):
        """Feeding different low-level metrics for the same measured VMs
        must change the surrogate's predictions — the augmentation is real,
        not decorative."""
        design = trace.environment("kmeans/Spark 2.1/small")
        workload_id = "kmeans/Spark 2.1/small"
        matrix = np.random.default_rng(3).normal(size=(18, 4))
        measured = [0, 4, 8, 12]
        values = np.array([50.0, 60.0, 70.0, 80.0])
        real = [trace.measurement(workload_id, trace.catalog[i]) for i in measured]
        fake = [
            Measurement(
                vm=m.vm,
                execution_time_s=m.execution_time_s,
                cost_usd=m.cost_usd,
                metrics=LowLevelMetrics(*(np.arange(6.0) * (i + 1) * 13.0 + 1)),
            )
            for i, m in enumerate(real)
        ]
        scores_real = PairwiseTreeScorer(matrix, seed=0).score(measured, values, real, [1, 2])
        scores_fake = PairwiseTreeScorer(matrix, seed=0).score(measured, values, fake, [1, 2])
        assert not np.allclose(scores_real.predicted, scores_fake.predicted)
