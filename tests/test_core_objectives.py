"""Unit tests for optimisation objectives."""

import pytest

from repro.cloud.vmtypes import get_vm_type
from repro.core.objectives import Objective
from repro.simulator.cluster import Measurement
from repro.simulator.lowlevel import LowLevelMetrics


@pytest.fixture()
def measurement():
    return Measurement(
        vm=get_vm_type("c4.large"),
        execution_time_s=100.0,
        cost_usd=0.5,
        metrics=LowLevelMetrics(50, 10, 6, 70, 30, 5),
    )


class TestValueOf:
    def test_time_objective(self, measurement):
        assert Objective.TIME.value_of(measurement) == 100.0

    def test_cost_objective(self, measurement):
        assert Objective.COST.value_of(measurement) == 0.5

    def test_product_objective(self, measurement):
        assert Objective.TIME_COST_PRODUCT.value_of(measurement) == pytest.approx(50.0)

    def test_product_weighs_time_and_cost_equally(self, measurement):
        """10% better time with 10% worse cost leaves the product ~unchanged
        — the paper's equal-importance design (Section VI-B)."""
        traded = Measurement(
            vm=measurement.vm,
            execution_time_s=90.0,
            cost_usd=0.5 / 0.9,
            metrics=measurement.metrics,
        )
        before = Objective.TIME_COST_PRODUCT.value_of(measurement)
        after = Objective.TIME_COST_PRODUCT.value_of(traded)
        assert after == pytest.approx(before)


class TestNames:
    def test_trace_keys(self):
        assert Objective.TIME.trace_key == "time"
        assert Objective.COST.trace_key == "cost"
        assert Objective.TIME_COST_PRODUCT.trace_key == "product"

    @pytest.mark.parametrize("name", ["time", "COST", "Product"])
    def test_from_name_case_insensitive(self, name):
        assert Objective.from_name(name).value == name.lower()

    def test_from_name_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown objective"):
            Objective.from_name("latency")

    def test_trace_keys_align_with_trace(self, trace):
        workload = trace.registry.workloads[0]
        for objective in Objective:
            values = trace.objective_values(workload, objective.trace_key)
            assert values.shape == (18,)
