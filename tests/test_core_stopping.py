"""Unit tests for stopping criteria."""

import numpy as np
import pytest

from repro.core.stopping import (
    EIThreshold,
    MaxMeasurements,
    PredictionDeltaThreshold,
    SearchState,
)


def state(count=8, best=100.0, predicted=None, ei=None):
    return SearchState(
        measurement_count=count,
        best_observed=best,
        predicted=None if predicted is None else np.asarray(predicted, dtype=float),
        expected_improvements=None if ei is None else np.asarray(ei, dtype=float),
    )


class TestMaxMeasurements:
    def test_stops_at_budget(self):
        criterion = MaxMeasurements(5)
        assert not criterion.should_stop(state(count=4))
        assert criterion.should_stop(state(count=5))
        assert criterion.should_stop(state(count=6))

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            MaxMeasurements(0)


class TestEIThreshold:
    def test_stops_when_max_ei_below_fraction_of_incumbent(self):
        criterion = EIThreshold(fraction=0.1, min_measurements=3)
        assert criterion.should_stop(state(best=100.0, ei=[9.0, 5.0]))
        assert not criterion.should_stop(state(best=100.0, ei=[11.0, 5.0]))

    def test_respects_min_measurements(self):
        criterion = EIThreshold(fraction=0.1, min_measurements=6)
        assert criterion.min_measurements == 6
        assert not criterion.should_stop(state(count=5, best=100.0, ei=[0.0]))
        assert criterion.should_stop(state(count=6, best=100.0, ei=[0.0]))

    def test_never_stops_without_ei_information(self):
        criterion = EIThreshold(fraction=0.1, min_measurements=0)
        assert not criterion.should_stop(state(ei=None))
        assert not criterion.should_stop(state(ei=[]))

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            EIThreshold(fraction=0.0)


class TestPredictionDeltaThreshold:
    def test_stops_when_no_predicted_improvement_beyond_threshold(self):
        criterion = PredictionDeltaThreshold(threshold=1.1, min_measurements=0)
        # min predicted 115 >= 1.1 * 100 -> stop.
        assert criterion.should_stop(state(best=100.0, predicted=[115.0, 140.0]))
        # min predicted 105 < 110 -> keep searching.
        assert not criterion.should_stop(state(best=100.0, predicted=[105.0, 140.0]))

    def test_low_threshold_stops_earlier_than_high(self):
        """A 0.9 threshold stops while a 10% predicted improvement remains;
        a 1.3 threshold keeps searching in the same state — the search-cost
        vs quality trade-off of Figure 11."""
        aggressive = PredictionDeltaThreshold(threshold=0.9, min_measurements=0)
        patient = PredictionDeltaThreshold(threshold=1.3, min_measurements=0)
        s = state(best=100.0, predicted=[95.0, 130.0])
        assert aggressive.should_stop(s)
        assert not patient.should_stop(s)

    def test_respects_min_measurements(self):
        criterion = PredictionDeltaThreshold(threshold=1.1, min_measurements=4)
        s = state(count=3, best=100.0, predicted=[200.0])
        assert not criterion.should_stop(s)

    def test_never_stops_without_predictions(self):
        criterion = PredictionDeltaThreshold(min_measurements=0)
        assert not criterion.should_stop(state(predicted=None))
        assert not criterion.should_stop(state(predicted=[]))

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            PredictionDeltaThreshold(threshold=0.0)


class TestDescribe:
    """describe() feeds the stopping_rule_fired event's detail field."""

    def test_carries_rule_name_and_threshold(self):
        assert MaxMeasurements(7).describe() == "MaxMeasurements(budget=7)"
        assert EIThreshold(0.2).describe() == "EIThreshold(fraction=0.2)"
        assert (
            PredictionDeltaThreshold(1.05).describe()
            == "PredictionDeltaThreshold(threshold=1.05)"
        )

    def test_base_fallback_is_the_class_name(self):
        class Custom(MaxMeasurements):
            def describe(self):
                return super(MaxMeasurements, self).describe()

        assert Custom(3).describe() == "Custom"
