"""Failure-injection tests: the search must degrade, not die.

Fault scenarios are built with :class:`repro.faults.FaultInjector` —
seeded, reproducible fault plans — and the SMBO loop must survive them:
transient failures are retried, persistently failing VMs are quarantined
(the search continues over the remaining catalog), corrupted
measurements are rejected, and every failed attempt is charged.
"""

import pytest

from repro.core.baselines import ExhaustiveSearch, RandomSearch
from repro.core.naive_bo import NaiveBO
from repro.core.smbo import MeasurementError
from repro.faults import (
    CorruptedMeasurements,
    FaultInjector,
    FaultPlan,
    PermanentOutage,
    RetryPolicy,
    TransientTimeouts,
)

WORKLOAD = "kmeans/Spark 2.1/small"


def faulty(trace, *rules, seed=0):
    return FaultInjector(trace.environment(WORKLOAD), FaultPlan(tuple(rules), seed=seed))


class TestTransientFailures:
    def test_every_third_call_failing_still_completes(self, trace):
        env = faulty(trace, TransientTimeouts(every=3))
        result = RandomSearch(env, seed=0, measure_retries=1).run()
        assert result.search_cost == 18
        assert result.stopped_by == "exhausted"
        assert result.failure_count > 0
        assert result.charged_cost == 18 + result.failure_count

    def test_without_retries_failed_vms_are_revisited(self, trace):
        # No retries: a failed VM stays unmeasured and is re-proposed
        # later instead of aborting the whole search.
        env = faulty(trace, TransientTimeouts(every=4))
        result = RandomSearch(env, seed=0).run()
        assert result.search_cost == 18
        assert not result.quarantined_vms

    def test_retried_search_matches_reliable_search_outcome(self, trace):
        reliable = RandomSearch(trace.environment(WORKLOAD), seed=4).run()
        env = faulty(trace, TransientTimeouts(every=4))
        retried = RandomSearch(env, seed=4, measure_retries=2).run()
        # Trace replay is deterministic, so retries change nothing but cost.
        assert retried.measured_vm_names == reliable.measured_vm_names
        assert retried.best_value == pytest.approx(reliable.best_value)
        assert retried.best_vm_name == reliable.best_vm_name

    def test_random_transient_faults_reach_the_same_best_vm(self, trace):
        # Acceptance: a 1-in-3 random-failure environment finds the same
        # best VM as the fault-free run under the same optimiser seed.
        clean = NaiveBO(trace.environment(WORKLOAD), seed=0).run()
        env = faulty(trace, TransientTimeouts(rate=1 / 3), seed=11)
        noisy = NaiveBO(env, seed=0, measure_retries=3).run()
        assert noisy.best_vm_name == clean.best_vm_name
        assert noisy.best_value == pytest.approx(clean.best_value)

    def test_environment_bill_matches_charged_cost(self, trace):
        env = faulty(trace, TransientTimeouts(every=3))
        result = RandomSearch(env, seed=0, measure_retries=1).run()
        # Failed attempts are billed by the cloud and counted by us.
        assert env.measurement_count == result.charged_cost


class TestPermanentFailures:
    def test_dead_vm_is_quarantined_and_search_completes(self, trace):
        env = faulty(trace, PermanentOutage("c3.large"))
        result = ExhaustiveSearch(env, seed=0, measure_retries=2).run()
        assert result.quarantined_vms == ("c3.large",)
        assert result.search_cost == 17  # every reachable VM measured
        assert result.stopped_by == "exhausted"
        assert "c3.large" not in result.measured_vm_names

    def test_failure_events_record_the_cause(self, trace):
        env = faulty(trace, PermanentOutage("c3.large"))
        result = ExhaustiveSearch(env, seed=0, measure_retries=2).run()
        c3_events = [e for e in result.failure_events if e.vm_name == "c3.large"]
        assert len(c3_events) == 3  # quarantined after 3 consecutive failures
        assert [e.attempt for e in c3_events] == [1, 2, 3]
        assert all("VMUnavailableError" in e.error for e in c3_events)
        assert all("permanently unavailable" in e.error for e in c3_events)

    def test_all_vms_dead_raises_measurement_error(self, trace):
        names = [vm.name for vm in trace.catalog]
        env = faulty(trace, PermanentOutage(*names))
        with pytest.raises(MeasurementError, match="no initial measurement"):
            RandomSearch(env, seed=0).run()

    def test_negative_retries_rejected(self, trace):
        with pytest.raises(ValueError, match="measure_retries"):
            RandomSearch(trace.environment(WORKLOAD), measure_retries=-1)


class TestCorruptedMeasurements:
    def test_nan_measurements_are_rejected_and_retried(self, trace):
        env = faulty(trace, CorruptedMeasurements(every=5, mode="nan"))
        result = RandomSearch(env, seed=0, measure_retries=2).run()
        assert result.search_cost == 18
        assert all(step.objective_value > 0 for step in result.steps)
        assert any("CorruptedMeasurementError" in e.error for e in result.failure_events)

    def test_negative_measurements_are_rejected(self, trace):
        env = faulty(trace, CorruptedMeasurements(every=6, mode="negative"))
        result = RandomSearch(env, seed=0, measure_retries=2).run()
        assert all(step.objective_value > 0 for step in result.steps)


class TestDeterminism:
    def test_identical_runs_produce_identical_results(self, trace):
        policy = RetryPolicy(max_attempts=3, backoff_base_s=2.0, jitter=0.5)

        def run_once():
            env = faulty(trace, TransientTimeouts(rate=0.3), seed=9)
            return RandomSearch(env, seed=5, retry_policy=policy).run()

        a, b = run_once(), run_once()
        assert a == b  # steps, failure events, quarantine, retry waits

    def test_backoff_waits_are_deterministic_and_positive(self, trace):
        policy = RetryPolicy(max_attempts=4, backoff_base_s=1.0, jitter=1.0)

        def run_once():
            env = faulty(trace, TransientTimeouts(every=2), seed=0)
            return RandomSearch(env, seed=7, retry_policy=policy).run()

        a, b = run_once(), run_once()
        assert a.retry_wait_s == pytest.approx(b.retry_wait_s)
        assert a.retry_wait_s > 0

    def test_rerun_of_same_optimizer_instance_is_identical(self, trace):
        env = faulty(trace, TransientTimeouts(every=3), seed=2)
        optimizer = ExhaustiveSearch(env, seed=1, measure_retries=1)
        assert optimizer.run() == optimizer.run()


class TestBudgetAccounting:
    def test_failed_attempts_count_against_the_budget(self, trace):
        env = faulty(trace, TransientTimeouts(every=2))
        result = RandomSearch(env, seed=0, measure_retries=3, max_measurements=8).run()
        assert result.stopped_by == "budget"
        assert result.charged_cost == 8
        assert result.search_cost < 8  # some of the 8 charges failed

    def test_budget_exhaustion_mid_retry_stops_cleanly(self, trace):
        env = faulty(trace, PermanentOutage("c3.large"))
        # One success, then c3.large burns the remaining budget mid-retry.
        result = ExhaustiveSearch(
            env, seed=0, measure_retries=5,
            max_measurements=3, quarantine_after=10,
        ).run(initial_vms=[1, 0])
        assert result.stopped_by == "budget"
        assert result.charged_cost == 3
        assert result.search_cost == 1
        assert not result.quarantined_vms  # threshold never reached

    def test_step_attempt_counts_recorded(self, trace):
        env = faulty(trace, TransientTimeouts(every=3))
        result = RandomSearch(env, seed=0, measure_retries=2).run()
        assert any(step.attempts > 1 for step in result.steps)
        retries_within_steps = sum(step.attempts - 1 for step in result.steps)
        assert retries_within_steps <= result.failure_count
