"""Failure-injection tests: the search must survive flaky measurements."""

import numpy as np
import pytest

from repro.core.baselines import RandomSearch
from repro.core.naive_bo import NaiveBO
from repro.core.smbo import MeasurementError


class FlakyEnvironment:
    """Wraps an environment; every ``period``-th measure call raises."""

    def __init__(self, inner, period=3, permanent_vm=None):
        self._inner = inner
        self._period = period
        self._calls = 0
        self._permanent_vm = permanent_vm

    @property
    def catalog(self):
        return self._inner.catalog

    @property
    def workload(self):
        return self._inner.workload

    @property
    def measurement_count(self):
        return self._inner.measurement_count

    def measure(self, vm):
        if self._permanent_vm is not None and vm.name == self._permanent_vm:
            raise ConnectionError(f"{vm.name} permanently unavailable")
        self._calls += 1
        if self._calls % self._period == 0:
            raise TimeoutError("spot instance interrupted")
        return self._inner.measure(vm)

    def reset(self):
        self._inner.reset()


@pytest.fixture()
def flaky(trace):
    return FlakyEnvironment(trace.environment("kmeans/Spark 2.1/small"), period=3)


class TestTransientFailures:
    def test_without_retries_the_failure_propagates(self, flaky):
        with pytest.raises(MeasurementError, match="failed after 1 attempts"):
            RandomSearch(flaky, seed=0).run()

    def test_one_retry_survives_every_third_failure(self, flaky):
        result = RandomSearch(flaky, seed=0, measure_retries=1).run()
        assert result.search_cost == 18

    def test_retried_search_matches_reliable_search_outcome(self, trace):
        reliable = RandomSearch(
            trace.environment("kmeans/Spark 2.1/small"), seed=4
        ).run()
        flaky_env = FlakyEnvironment(
            trace.environment("kmeans/Spark 2.1/small"), period=4
        )
        retried = RandomSearch(flaky_env, seed=4, measure_retries=2).run()
        # Trace replay is deterministic, so retries change nothing but cost.
        assert retried.measured_vm_names == reliable.measured_vm_names
        assert retried.best_value == pytest.approx(reliable.best_value)

    def test_model_based_search_survives_too(self, trace):
        flaky_env = FlakyEnvironment(
            trace.environment("kmeans/Spark 2.1/small"), period=5
        )
        result = NaiveBO(flaky_env, seed=0, measure_retries=1).run()
        assert result.search_cost == 18


class TestPermanentFailures:
    def test_permanently_dead_vm_aborts_with_clear_error(self, trace):
        env = FlakyEnvironment(
            trace.environment("kmeans/Spark 2.1/small"),
            period=10**9,
            permanent_vm="c3.large",
        )
        with pytest.raises(MeasurementError, match="c3.large"):
            # Exhaustive search will hit c3.large first.
            from repro.core.baselines import ExhaustiveSearch

            ExhaustiveSearch(env, seed=0, measure_retries=2).run()

    def test_error_chains_the_original_cause(self, trace):
        env = FlakyEnvironment(
            trace.environment("kmeans/Spark 2.1/small"),
            period=10**9,
            permanent_vm="c3.large",
        )
        from repro.core.baselines import ExhaustiveSearch

        with pytest.raises(MeasurementError) as excinfo:
            ExhaustiveSearch(env, seed=0, measure_retries=1).run()
        assert isinstance(excinfo.value.__cause__, ConnectionError)

    def test_negative_retries_rejected(self, trace):
        with pytest.raises(ValueError, match="measure_retries"):
            RandomSearch(
                trace.environment("kmeans/Spark 2.1/small"), measure_retries=-1
            )
