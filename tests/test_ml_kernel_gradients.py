"""Finite-difference validation of the analytic GP gradients.

Two layers are checked against central differences in log-parameter
space:

* every kernel's ``value_and_grad`` (``dK/d theta``) — the four
  stationary kernels, isotropic and ARD, the white-noise kernel, and
  sum/product composites,
* the GP's fused log-marginal-likelihood value+gradient (Rasmussen &
  Williams Eq. 5.9), including the observation-noise parameter.

Matérn 1/2 is not differentiable at zero distance, so its self-pair
checks mask the diagonal (where the analytic subgradient is exactly 0
and central differences only measure ``sqrt(eps)`` noise).
"""

import numpy as np
import pytest

from repro.ml.gp import GaussianProcessRegressor
from repro.ml.kernels import (
    RBF,
    DesignGeometry,
    Geometry,
    Matern12,
    Matern32,
    Matern52,
    Product,
    Sum,
    White,
)

STEP = 1e-6


def kernel_cases():
    return [
        pytest.param(lambda: RBF(1.7, 0.8), id="rbf"),
        pytest.param(lambda: Matern12(2.0, 1.3), id="matern12"),
        pytest.param(lambda: Matern32(0.5, 2.0), id="matern32"),
        pytest.param(lambda: Matern52(1.2, 0.6), id="matern52"),
        pytest.param(lambda: RBF(1.3, np.array([0.5, 1.0, 2.0])), id="rbf-ard"),
        pytest.param(lambda: Matern12(1.1, np.array([0.7, 1.5, 1.0])), id="matern12-ard"),
        pytest.param(lambda: Matern32(0.9, np.array([1.2, 0.4, 2.0])), id="matern32-ard"),
        pytest.param(lambda: Matern52(0.9, np.array([2.0, 0.3, 1.0])), id="matern52-ard"),
        pytest.param(lambda: White(0.2), id="white"),
        pytest.param(lambda: Sum(RBF(1.1, 0.9), White(0.3)), id="sum"),
        pytest.param(lambda: Product(Matern32(1.4, 1.1), RBF(0.7, 2.2)), id="product"),
    ]


@pytest.fixture(scope="module")
def X():
    return np.random.default_rng(0).normal(size=(7, 3))


def central_difference(kernel, X, param):
    """dK/d theta[param] by central differences in log space."""
    theta = kernel.theta
    plus, minus = kernel.clone(), kernel.clone()
    theta_plus, theta_minus = theta.copy(), theta.copy()
    theta_plus[param] += STEP
    theta_minus[param] -= STEP
    plus.theta, minus.theta = theta_plus, theta_minus
    return (plus(X) - minus(X)) / (2 * STEP)


class TestKernelGradients:
    @pytest.mark.parametrize("make", kernel_cases())
    def test_matches_central_differences(self, make, X):
        kernel = make()
        K, grad = kernel.value_and_grad(Geometry(X))
        assert grad.shape == (kernel.theta.size, X.shape[0], X.shape[0])
        # Matérn 1/2 is non-differentiable at zero distance, where central
        # differences measure sqrt-clipping noise; skip the diagonal.
        mask = ~np.eye(X.shape[0], dtype=bool)
        for param in range(kernel.theta.size):
            numeric = central_difference(kernel, X, param)
            assert np.allclose(grad[param][mask], numeric[mask], atol=1e-5), (
                f"param {param}"
            )

    @pytest.mark.parametrize("make", kernel_cases())
    def test_value_matches_call(self, make, X):
        kernel = make()
        K, grad = kernel.value_and_grad(Geometry(X))
        assert np.allclose(K, kernel(X), atol=1e-12)
        assert np.allclose(kernel.value(Geometry(X)), kernel(X), atol=1e-12)

    def test_variance_gradient_is_the_kernel_matrix(self, X):
        kernel = Matern52(1.5, 0.9)
        K, grad = kernel.value_and_grad(Geometry(X))
        assert np.allclose(grad[0], K)

    def test_matern12_diagonal_subgradient_is_zero(self, X):
        _, grad = Matern12(2.0, 1.3).value_and_grad(Geometry(X))
        assert np.all(np.diag(grad[1]) == 0.0)
        assert np.all(np.isfinite(grad))

    def test_cross_geometry_gradients(self, X):
        Y = np.random.default_rng(1).normal(size=(5, 3))
        kernel = Matern52(1.2, np.array([2.0, 0.3, 1.0]))
        K, grad = kernel.value_and_grad(Geometry(X, Y))
        assert K.shape == (7, 5)
        theta = kernel.theta
        for param in range(theta.size):
            plus, minus = kernel.clone(), kernel.clone()
            tp, tm = theta.copy(), theta.copy()
            tp[param] += STEP
            tm[param] -= STEP
            plus.theta, minus.theta = tp, tm
            numeric = (plus(X, Y) - minus(X, Y)) / (2 * STEP)
            assert np.allclose(grad[param], numeric, atol=1e-5)

    def test_base_kernel_has_no_analytic_gradient(self, X):
        from repro.ml.kernels import Kernel

        with pytest.raises(NotImplementedError, match="analytic gradient"):
            Kernel.value_and_grad(RBF(), Geometry(X))


class TestGeometry:
    def test_scaled_sq_matches_direct(self, X):
        from repro.ml.kernels import _sq_dists

        geometry = Geometry(X)
        assert np.allclose(geometry.scaled_sq(0.7), _sq_dists(X, X, 0.7), atol=1e-10)
        ard = np.array([0.5, 2.0, 1.0])
        assert np.allclose(geometry.scaled_sq(ard), _sq_dists(X, X, ard), atol=1e-10)

    def test_dimension_mismatch_rejected(self, X):
        with pytest.raises(ValueError, match="dimensionality"):
            Geometry(X, np.zeros((3, 2)))

    def test_from_blocks_requires_3d(self):
        with pytest.raises(ValueError, match="dims"):
            Geometry.from_blocks(np.zeros((2, 2)), None, self_pair=True)

    def test_from_blocks_derives_total(self, X):
        geometry = Geometry(X)
        rebuilt = Geometry.from_blocks(geometry.dims, None, self_pair=True)
        assert np.allclose(rebuilt.total, geometry.total)


class TestDesignGeometry:
    def test_blocks_match_direct_evaluation(self, X):
        design = DesignGeometry(X)
        kernel = Matern52(1.2, np.array([2.0, 0.3, 1.0]))
        measured = [2, 5, 0]
        assert np.allclose(kernel.value(design.fit_geometry(measured)), kernel(X[measured]))
        candidates = [1, 3, 6]
        assert np.allclose(
            kernel.value(design.cross_geometry(candidates, measured)),
            kernel(X[candidates], X[measured]),
        )

    def test_extends_one_column_per_measurement(self, X):
        design = DesignGeometry(X)
        design.fit_geometry([2, 5, 0])
        assert design.extensions == 3 and design.rebuilds == 0
        design.fit_geometry([2, 5, 0, 4])
        assert design.extensions == 4 and design.rebuilds == 0

    def test_diverged_order_rebuilds(self, X):
        design = DesignGeometry(X)
        design.fit_geometry([2, 5, 0])
        kernel = Matern52()
        assert np.allclose(kernel.value(design.fit_geometry([5, 2])), kernel(X[[5, 2]]))
        assert design.rebuilds == 1

    def test_white_sees_self_pair_only_in_fit_block(self, X):
        design = DesignGeometry(X)
        white = White(0.4)
        fit = white.value(design.fit_geometry([1, 2]))
        cross = white.value(design.cross_geometry([3, 4], [1, 2]))
        assert np.allclose(fit, 0.4 * np.eye(2))
        assert np.allclose(cross, 0.0)


class TestFusedLMLGradient:
    @pytest.fixture(scope="class")
    def data(self):
        rng = np.random.default_rng(3)
        X = rng.uniform(-3, 3, size=(12, 4))
        y = np.sin(X[:, 0]) + 0.5 * X[:, 1] + rng.normal(0, 0.05, size=12)
        return X, (y - y.mean()) / y.std()

    @pytest.mark.parametrize(
        "make",
        [
            pytest.param(lambda: RBF(), id="rbf"),
            pytest.param(lambda: Matern12(), id="matern12"),
            pytest.param(lambda: Matern32(), id="matern32"),
            pytest.param(lambda: Matern52(), id="matern52"),
            pytest.param(lambda: Matern52(lengthscale=np.ones(4)), id="matern52-ard"),
            pytest.param(lambda: Sum(RBF(), White(0.1)), id="sum"),
        ],
    )
    def test_matches_central_differences(self, make, data):
        X, y_scaled = data
        gp = GaussianProcessRegressor(make(), optimise=False, seed=0).fit(X, y_scaled)
        geometry = Geometry(X)
        gp._eye = np.eye(X.shape[0])
        theta = gp._packed_theta()
        value, grad = gp._lml_value_and_grad(theta, y_scaled, geometry)
        assert np.isfinite(value)
        for param in range(theta.size):
            tp, tm = theta.copy(), theta.copy()
            tp[param] += STEP
            tm[param] -= STEP
            vp = gp._lml_value_and_grad(tp, y_scaled, geometry)[0]
            vm = gp._lml_value_and_grad(tm, y_scaled, geometry)[0]
            numeric = (vp - vm) / (2 * STEP)
            assert grad[param] == pytest.approx(numeric, abs=1e-4, rel=1e-4)

    def test_fused_value_matches_value_only_path(self, data):
        X, y_scaled = data
        gp = GaussianProcessRegressor(Matern52(), optimise=False, seed=0).fit(X, y_scaled)
        gp._eye = np.eye(X.shape[0])
        theta = gp._packed_theta()
        fused, _ = gp._lml_value_and_grad(theta, y_scaled, Geometry(X))
        gp._set_packed_theta(theta)
        assert fused == pytest.approx(gp.log_marginal_likelihood(y_scaled), rel=1e-12)


class TestGradientModes:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="gradient mode"):
            GaussianProcessRegressor(gradient="magic")

    def test_analytic_and_numeric_reach_the_same_likelihood(self):
        rng = np.random.default_rng(4)
        X = rng.uniform(-3, 3, size=(14, 3))
        y = np.sin(X[:, 0]) + 0.3 * X[:, 2]
        y_scaled = (y - y.mean()) / y.std()
        lml = {}
        for mode in ("analytic", "numeric"):
            gp = GaussianProcessRegressor(Matern52(), seed=0, gradient=mode).fit(X, y)
            lml[mode] = gp.log_marginal_likelihood(y_scaled)
        assert lml["analytic"] == pytest.approx(lml["numeric"], abs=1e-3)

    def test_analytic_uses_fewer_kernel_builds(self):
        rng = np.random.default_rng(5)
        X = rng.uniform(-3, 3, size=(12, 4))
        y = np.sin(X[:, 0]) + 0.5 * X[:, 1]
        builds = {}
        for mode in ("analytic", "numeric"):
            gp = GaussianProcessRegressor(Matern52(), seed=0, gradient=mode).fit(X, y)
            builds[mode] = gp.n_kernel_builds
        # The fused path needs one kernel build per L-BFGS-B iteration;
        # finite differences need one per parameter per iteration.
        assert builds["numeric"] >= 3 * builds["analytic"]

    def test_kernels_without_analytic_gradient_fall_back(self):
        class Opaque(Matern52):
            def value_and_grad(self, geometry):
                raise NotImplementedError("no analytic gradient")

        rng = np.random.default_rng(6)
        X = rng.uniform(-3, 3, size=(10, 2))
        y = np.sin(X[:, 0])
        gp = GaussianProcessRegressor(Opaque(), seed=0, gradient="analytic").fit(X, y)
        reference = GaussianProcessRegressor(Matern52(), seed=0, gradient="numeric").fit(X, y)
        assert np.allclose(gp.predict(X), reference.predict(X), atol=1e-8)

    def test_predict_with_cross_geometry_matches_plain(self):
        rng = np.random.default_rng(7)
        X = rng.uniform(-3, 3, size=(10, 3))
        y = np.sin(X[:, 0])
        queries = rng.uniform(-3, 3, size=(6, 3))
        gp = GaussianProcessRegressor(Matern52(), seed=0).fit(X, y)
        plain_mean, plain_std = gp.predict(queries, return_std=True)
        mean, std = gp.predict(queries, return_std=True, geometry=Geometry(queries, X))
        assert np.allclose(mean, plain_mean, atol=1e-10)
        assert np.allclose(std, plain_std, atol=1e-10)

    def test_predict_geometry_shape_validated(self):
        rng = np.random.default_rng(8)
        X = rng.uniform(size=(5, 2))
        gp = GaussianProcessRegressor(Matern52(), seed=0).fit(X, np.arange(5.0))
        with pytest.raises(ValueError, match="geometry shape"):
            gp.predict(X, geometry=Geometry(X[:2], X))

    def test_fit_geometry_shape_validated(self):
        rng = np.random.default_rng(9)
        X = rng.uniform(size=(5, 2))
        with pytest.raises(ValueError, match="geometry shape"):
            GaussianProcessRegressor(Matern52()).fit(X, np.arange(5.0), geometry=Geometry(X[:3]))
