"""Unit tests for the simulated cloud environment."""

import numpy as np
import pytest

from repro.cloud.pricing import default_price_list
from repro.cloud.vmtypes import get_vm_type
from repro.simulator.cluster import MeasurementEnvironment, SimulatedCloud


@pytest.fixture()
def workload(registry):
    return registry.get("kmeans/Spark 2.1/small")


class TestMeasurement:
    def test_measure_returns_consistent_cost(self, workload):
        cloud = SimulatedCloud(workload, seed=0)
        vm = get_vm_type("c4.xlarge")
        m = cloud.measure(vm)
        expected = m.execution_time_s * default_price_list().price_per_second(vm)
        assert m.cost_usd == pytest.approx(expected)
        assert m.vm is vm

    def test_measurements_are_charged(self, workload):
        cloud = SimulatedCloud(workload, seed=0)
        assert cloud.measurement_count == 0
        cloud.measure(get_vm_type("c4.large"))
        cloud.measure(get_vm_type("c4.large"))
        assert cloud.measurement_count == 2

    def test_reset_clears_counter_only(self, workload):
        cloud = SimulatedCloud(workload, seed=0)
        cloud.measure(get_vm_type("c4.large"))
        cloud.reset()
        assert cloud.measurement_count == 0

    def test_repeated_measurements_differ_by_noise(self, workload):
        cloud = SimulatedCloud(workload, seed=0)
        vm = get_vm_type("m4.large")
        a = cloud.measure(vm).execution_time_s
        b = cloud.measure(vm).execution_time_s
        assert a != b
        assert abs(a - b) / a < 0.3  # a few percent sigma

    def test_same_seed_reproduces_sequence(self, workload):
        values_a = [SimulatedCloud(workload, seed=9).measure(get_vm_type("c3.large")).execution_time_s]
        values_b = [SimulatedCloud(workload, seed=9).measure(get_vm_type("c3.large")).execution_time_s]
        assert values_a == values_b

    def test_measure_all_covers_catalog(self, workload, catalog):
        cloud = SimulatedCloud(workload, seed=0)
        measurements = cloud.measure_all()
        assert [m.vm for m in measurements] == list(catalog)
        assert cloud.measurement_count == 18

    def test_noise_free_times_close_to_measurements(self, workload, catalog):
        cloud = SimulatedCloud(workload, seed=0)
        truth = cloud.noise_free_times()
        measured = np.array([m.execution_time_s for m in cloud.measure_all()])
        assert np.all(np.abs(np.log(measured / truth)) < 0.25)

    def test_conforms_to_environment_protocol(self, workload):
        assert isinstance(SimulatedCloud(workload, seed=0), MeasurementEnvironment)

    def test_metrics_included_in_measurement(self, workload):
        cloud = SimulatedCloud(workload, seed=0)
        m = cloud.measure(get_vm_type("r3.large"))
        assert m.metrics.to_vector().shape == (6,)
