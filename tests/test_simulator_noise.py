"""Unit tests for the interference-noise model."""

import numpy as np
import pytest

from repro.simulator.lowlevel import LowLevelMetrics
from repro.simulator.noise import InterferenceModel


class TestTimeNoise:
    def test_same_seed_same_sequence(self):
        a = InterferenceModel(seed=42)
        b = InterferenceModel(seed=42)
        assert [a.perturb_time(100.0) for _ in range(5)] == [
            b.perturb_time(100.0) for _ in range(5)
        ]

    def test_different_seeds_differ(self):
        a = InterferenceModel(seed=1)
        b = InterferenceModel(seed=2)
        assert a.perturb_time(100.0) != b.perturb_time(100.0)

    def test_zero_sigma_is_identity(self):
        model = InterferenceModel(time_sigma=0.0, seed=0)
        assert model.perturb_time(123.4) == 123.4

    def test_noise_is_multiplicative_and_positive(self):
        model = InterferenceModel(time_sigma=0.5, seed=3)
        values = [model.perturb_time(100.0) for _ in range(200)]
        assert all(v > 0 for v in values)

    def test_noise_magnitude_tracks_sigma(self):
        small = InterferenceModel(time_sigma=0.01, seed=4)
        large = InterferenceModel(time_sigma=0.3, seed=4)
        spread_small = np.std([small.perturb_time(100.0) for _ in range(300)])
        spread_large = np.std([large.perturb_time(100.0) for _ in range(300)])
        assert spread_large > 5 * spread_small

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            InterferenceModel(time_sigma=-0.1)

    def test_unbiased_in_log_space(self):
        model = InterferenceModel(time_sigma=0.05, seed=5)
        values = np.array([model.perturb_time(100.0) for _ in range(3000)])
        assert np.mean(np.log(values)) == pytest.approx(np.log(100.0), abs=0.01)


class TestMetricNoise:
    def test_zero_sigma_is_identity(self):
        metrics = LowLevelMetrics(50, 10, 8, 70, 30, 5)
        model = InterferenceModel(metric_sigma=0.0, seed=0)
        assert model.perturb_metrics(metrics) == metrics

    def test_each_component_perturbed_independently(self):
        metrics = LowLevelMetrics(50, 10, 8, 70, 30, 5)
        model = InterferenceModel(metric_sigma=0.2, seed=6)
        noisy = model.perturb_metrics(metrics).to_vector()
        ratios = noisy / metrics.to_vector()
        assert len(set(np.round(ratios, 6))) == 6

    def test_metrics_stay_positive(self):
        metrics = LowLevelMetrics(50, 10, 8, 70, 30, 5)
        model = InterferenceModel(metric_sigma=0.5, seed=7)
        for _ in range(100):
            assert np.all(model.perturb_metrics(metrics).to_vector() > 0)

    def test_seed_and_noise_model_mutually_exclusive_in_cloud(self):
        from repro.simulator.cluster import SimulatedCloud
        from repro.workloads.registry import default_registry

        workload = next(iter(default_registry()))
        with pytest.raises(ValueError, match="not both"):
            SimulatedCloud(workload, noise=InterferenceModel(), seed=1)
