"""Unit tests for the ASCII figure renderer."""

import pytest

from repro.analysis.ascii_plots import bar_chart, line_chart


class TestLineChart:
    def test_renders_single_series(self):
        chart = line_chart({"cdf": [0.1, 0.5, 0.9]}, width=20, height=5)
        assert "*" in chart
        assert "cdf" in chart

    def test_multiple_series_get_distinct_glyphs(self):
        chart = line_chart(
            {"naive": [1, 2, 3], "augmented": [3, 2, 1]}, width=20, height=5
        )
        assert "* naive" in chart
        assert "o augmented" in chart
        assert "o" in chart.splitlines()[0] + chart

    def test_monotone_series_plots_monotone(self):
        chart = line_chart({"s": [0.0, 0.5, 1.0]}, width=3, height=3)
        rows = [line for line in chart.splitlines() if "|" in line and "+" not in line]
        plot = [row.split("|")[1] for row in rows]
        # Highest value in top row rightmost column, lowest bottom-left.
        assert plot[0][2] == "*"
        assert plot[2][0] == "*"

    def test_y_range_override(self):
        chart = line_chart({"s": [0.5, 0.5]}, height=4, y_min=0.0, y_max=1.0)
        assert "1.00" in chart
        assert "0.00" in chart

    def test_axis_labels_included(self):
        chart = line_chart(
            {"s": [1, 2]}, x_label="measurements", y_label="fraction solved"
        )
        assert "measurements" in chart
        assert "fraction solved" in chart

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            line_chart({})
        with pytest.raises(ValueError, match="empty"):
            line_chart({"s": []})

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="lengths differ"):
            line_chart({"a": [1, 2], "b": [1, 2, 3]})

    def test_constant_series_does_not_crash(self):
        line_chart({"s": [2.0, 2.0, 2.0]})


class TestBarChart:
    def test_values_scale_bar_lengths(self):
        chart = bar_chart({"short": 1.0, "long": 4.0}, width=8)
        short_row, long_row = chart.splitlines()
        assert short_row.count("#") < long_row.count("#")

    def test_labels_aligned(self):
        chart = bar_chart({"a": 1.0, "bbbb": 2.0})
        lines = chart.splitlines()
        assert lines[0].index("|") == lines[1].index("|")

    def test_unit_suffix(self):
        chart = bar_chart({"a": 1.5}, unit="x")
        assert "1.50x" in chart

    def test_zero_values_render(self):
        chart = bar_chart({"a": 0.0, "b": 0.0})
        assert "#" not in chart

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            bar_chart({"a": -1.0})

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            bar_chart({})
