"""Unit tests for the Section V-A instance-space encoding."""

import numpy as np
import pytest

from repro.cloud.encoding import FEATURE_NAMES, InstanceEncoder
from repro.cloud.vmtypes import get_vm_type


@pytest.fixture(scope="module")
def encoder():
    return InstanceEncoder()


class TestEncoding:
    def test_four_features(self, encoder):
        assert encoder.n_features == 4
        assert len(FEATURE_NAMES) == 4

    def test_design_matrix_shape(self, encoder):
        assert encoder.encode_all().shape == (18, 4)

    def test_cpu_type_codes_follow_family_order(self, encoder):
        codes = {
            family: encoder.encode(get_vm_type(f"{family}.large"))[0]
            for family in ("c3", "c4", "m3", "m4", "r3", "r4")
        }
        assert codes == {"c3": 1, "c4": 2, "m3": 3, "m4": 4, "r3": 5, "r4": 6}

    def test_core_count_is_actual_vcpus(self, encoder):
        assert encoder.encode(get_vm_type("m4.large"))[1] == 2
        assert encoder.encode(get_vm_type("m4.2xlarge"))[1] == 8

    def test_ram_per_core_uses_coarse_classes(self, encoder):
        assert encoder.encode(get_vm_type("c4.xlarge"))[2] == 2
        assert encoder.encode(get_vm_type("m4.xlarge"))[2] == 4
        assert encoder.encode(get_vm_type("r4.xlarge"))[2] == 8

    def test_ebs_class_follows_size(self, encoder):
        assert encoder.encode(get_vm_type("c3.large"))[3] == 1
        assert encoder.encode(get_vm_type("c3.xlarge"))[3] == 2
        assert encoder.encode(get_vm_type("c3.2xlarge"))[3] == 3

    def test_all_rows_distinct(self, encoder):
        matrix = encoder.encode_all()
        assert len({tuple(row) for row in matrix}) == 18

    def test_encode_all_returns_a_copy(self, encoder):
        matrix = encoder.encode_all()
        matrix[0, 0] = 99.0
        assert encoder.encode_all()[0, 0] != 99.0


class TestIndexing:
    def test_index_roundtrip(self, encoder):
        for index in range(18):
            vm = encoder.vm_at(index)
            assert encoder.index_of(vm) == index
            assert encoder.index_of(vm.name) == index

    def test_rows_align_with_catalog(self, encoder):
        matrix = encoder.encode_all()
        for index, vm in enumerate(encoder.catalog):
            assert np.array_equal(matrix[index], encoder.encode(vm))

    def test_unknown_vm_raises(self, encoder):
        with pytest.raises(KeyError, match="not in this encoder"):
            encoder.index_of("c9.mega")

    def test_custom_catalog_subset(self):
        sub = InstanceEncoder(
            (get_vm_type("c4.large"), get_vm_type("r4.2xlarge"))
        )
        assert sub.encode_all().shape == (2, 4)
        assert sub.index_of("r4.2xlarge") == 1


class TestEncodingIsDeliberatelyLossy:
    def test_adjacent_cpu_codes_hide_large_ram_differences(self, encoder):
        """c4 (code 2) and m3 (code 3) are neighbours on the cpu_type axis,
        yet their actual per-core RAM differs 2x — the non-smoothness the
        paper blames for GP fragility."""
        c4 = get_vm_type("c4.large")
        m3 = get_vm_type("m3.large")
        assert abs(encoder.encode(c4)[0] - encoder.encode(m3)[0]) == 1
        assert m3.ram_per_core_gb / c4.ram_per_core_gb >= 2.0

    def test_encoding_drops_clock_and_disk_detail(self, encoder):
        """The published features carry neither clock factors nor local-SSD
        presence; two VMs can share 3 of 4 features yet differ in both."""
        c3 = get_vm_type("c3.xlarge")
        c4 = get_vm_type("c4.xlarge")
        assert np.array_equal(encoder.encode(c3)[1:], encoder.encode(c4)[1:])
        assert c3.clock_factor != c4.clock_factor
        assert c3.local_ssd != c4.local_ssd
