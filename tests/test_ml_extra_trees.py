"""Unit tests for the Extra-Trees ensemble."""

import numpy as np
import pytest

from repro.ml.extra_trees import ExtraTreesRegressor


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(0)
    X = rng.uniform(-2, 2, size=(150, 4))
    y = 3.0 * (X[:, 0] > 0) + X[:, 1] ** 2 + 0.1 * rng.normal(size=150)
    return X, y


class TestEnsemble:
    def test_mean_prediction_tracks_function(self, data):
        X, y = data
        model = ExtraTreesRegressor(n_estimators=30, seed=1).fit(X, y)
        rmse = np.sqrt(np.mean((model.predict(X) - y) ** 2))
        assert rmse < 0.5

    def test_ensemble_beats_single_tree_off_sample(self, data):
        X, y = data
        rng = np.random.default_rng(9)
        X_test = rng.uniform(-2, 2, size=(300, 4))
        y_test = 3.0 * (X_test[:, 0] > 0) + X_test[:, 1] ** 2

        single = ExtraTreesRegressor(n_estimators=1, seed=2).fit(X, y)
        ensemble = ExtraTreesRegressor(n_estimators=40, seed=2).fit(X, y)
        rmse_single = np.sqrt(np.mean((single.predict(X_test) - y_test) ** 2))
        rmse_ensemble = np.sqrt(np.mean((ensemble.predict(X_test) - y_test) ** 2))
        assert rmse_ensemble < rmse_single

    def test_trees_are_diverse(self, data):
        X, y = data
        model = ExtraTreesRegressor(n_estimators=10, seed=3).fit(X, y)
        rng = np.random.default_rng(1)
        queries = rng.uniform(-2, 2, size=(20, 4))
        per_tree = np.stack([tree.predict(queries) for tree in model.trees])
        assert np.any(per_tree.std(axis=0) > 0)

    def test_std_is_across_tree_dispersion(self, data):
        X, y = data
        model = ExtraTreesRegressor(n_estimators=15, seed=4).fit(X, y)
        queries = X[:10]
        mean, std = model.predict(queries, return_std=True)
        per_tree = np.stack([tree.predict(queries) for tree in model.trees])
        assert np.allclose(mean, per_tree.mean(axis=0))
        assert np.allclose(std, per_tree.std(axis=0))

    def test_deterministic_given_seed(self, data):
        X, y = data
        a = ExtraTreesRegressor(n_estimators=5, seed=7).fit(X, y).predict(X)
        b = ExtraTreesRegressor(n_estimators=5, seed=7).fit(X, y).predict(X)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self, data):
        X, y = data
        queries = np.random.default_rng(11).uniform(-2, 2, size=(50, 4))
        a = ExtraTreesRegressor(n_estimators=5, seed=1).fit(X, y).predict(queries)
        b = ExtraTreesRegressor(n_estimators=5, seed=2).fit(X, y).predict(queries)
        assert not np.array_equal(a, b)

    def test_hyperparameters_forwarded_to_trees(self, data):
        X, y = data
        model = ExtraTreesRegressor(n_estimators=3, max_depth=2, seed=0).fit(X, y)
        assert all(tree.depth() <= 2 for tree in model.trees)

    def test_trees_property_empty_before_fit(self):
        assert ExtraTreesRegressor().trees == ()


class TestValidation:
    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError, match="fitted"):
            ExtraTreesRegressor().predict(np.zeros((1, 2)))

    def test_zero_estimators_rejected(self):
        with pytest.raises(ValueError, match="n_estimators"):
            ExtraTreesRegressor(n_estimators=0)
