"""Level-synchronous vectorized tree builders vs the classic growers.

Bit-identity between the breadth-first builders and the depth-first
classic growers is impossible in general — random draws are consumed in
a different order, and exact score ties are broken by floating-point
noise that differs between the per-node and the segmented arithmetic.
So equivalence is pinned in layers:

* with *deterministic* stubbed randomness (ascending candidate order,
  midpoint thresholds) and well-separated nodes, both growers must make
  literally identical splits (checked by walking the trees);
* the vectorized output must be self-consistent: the directly-emitted
  packed arrays and the per-tree shells must predict identically;
* seeded end-to-end searches must reach identical outcomes
  (``tests/test_builder_equivalence.py``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.extra_trees import ExtraTreesRegressor
from repro.ml.random_forest import CARTRegressionTree, RandomForestRegressor
from repro.ml.tree import RegressionTree, predict_packed
from repro.ml.tree_builder import (
    TREE_BUILDERS,
    build_cart_forest,
    build_extra_trees,
)


class AscendingChoice:
    """Deterministic RNG stub for the classic growers: candidate
    features in ascending order, thresholds at the feature midpoint."""

    def choice(self, n, size, replace):
        return np.arange(size)

    def uniform(self, size):
        return np.full(size, 0.5)


class MidpointUniform:
    """Deterministic RNG stub for the vectorized builders: every
    threshold lands mid-range.  Candidate draws must not happen when
    ``max_features`` covers all features."""

    def uniform(self, size):
        return np.full(size, 0.5)

    def random(self, shape):  # pragma: no cover - guards the k==d invariant
        raise AssertionError("no candidate subsampling expected with k == d")


def _make_data(seed, n=200, d=6):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    y = X @ rng.normal(size=d) + 0.05 * rng.normal(size=n)
    return X, y


def _assert_same_structure(built, index, classic):
    feature, threshold, left, right, value, _ = built.tree_arrays(index)

    def walk(vi, ci):
        assert feature[vi] == classic._feature[ci]
        if feature[vi] < 0:
            assert value[vi] == pytest.approx(classic._value[ci])
            return
        assert threshold[vi] == pytest.approx(classic._threshold[ci])
        walk(left[vi], classic._left[ci])
        walk(right[vi], classic._right[ci])

    assert feature.size == classic.node_count
    walk(0, 0)


class TestStubbedSplitEquivalence:
    """Identical splits given identical (stubbed) random draws.

    Uses well-separated nodes (``min_samples_split=20``, ``max_depth=4``)
    because tiny nodes produce exact score ties whose winner depends on
    summation order; the pinned seeds are ones without such ties.
    """

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 6, 7])
    def test_cart_matches_classic(self, seed):
        X, y = _make_data(seed)
        built = build_cart_forest(
            X, y, 1, min_samples_split=20, max_depth=4,
            rng=np.random.default_rng(0),
        )
        classic = CARTRegressionTree(min_samples_split=20, max_depth=4)
        classic._rng = AscendingChoice()
        classic.fit(X, y)
        _assert_same_structure(built, 0, classic)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 6, 7])
    def test_extra_trees_matches_classic(self, seed):
        X, y = _make_data(seed)
        built = build_extra_trees(
            X, y, 1, min_samples_split=20, max_depth=4, rng=MidpointUniform()
        )
        classic = RegressionTree(min_samples_split=20, max_depth=4)
        classic._rng = AscendingChoice()
        classic.fit(X, y)
        _assert_same_structure(built, 0, classic)

    def test_cart_full_feature_train_predictions_exact(self):
        """With all features considered, CART is deterministic up to tie
        order, and both growers drive training rows to pure leaves — so
        training predictions agree exactly even when structure differs."""
        X, y = _make_data(11)
        built = build_cart_forest(X, y, 1, rng=np.random.default_rng(0))
        classic = CARTRegressionTree(seed=0).fit(X, y)
        np.testing.assert_allclose(
            predict_packed(built.packed, X)[0], classic.predict(X)
        )


class TestBuiltForestEmission:
    def test_packed_and_shells_predict_identically(self):
        """The directly-emitted packed arrays and the rebased per-tree
        arrays are two views of the same forest."""
        X, y = _make_data(5)
        built = build_extra_trees(X, y, 8, rng=np.random.default_rng(3))
        shells = [
            RegressionTree.from_arrays(*built.tree_arrays(i))
            for i in range(built.n_trees)
        ]
        queries = np.random.default_rng(9).normal(size=(50, X.shape[1]))
        expected = np.stack([shell.predict(queries) for shell in shells])
        np.testing.assert_array_equal(predict_packed(built.packed, queries), expected)

    def test_roots_and_counts_partition_the_node_arrays(self):
        X, y = _make_data(6)
        built = build_extra_trees(X, y, 5, rng=np.random.default_rng(4))
        assert built.n_trees == 5
        assert built.offsets[0] == 0
        np.testing.assert_array_equal(
            built.offsets[1:], np.cumsum(built.counts)[:-1]
        )
        assert built.counts.sum() == built.packed.node_count
        # Child pointers stay within their own tree's packed block.
        for i in range(5):
            start, stop = built.offsets[i], built.offsets[i] + built.counts[i]
            block = slice(start, stop)
            inner = built.packed.left[block][built.packed.left[block] >= 0]
            assert np.all((inner >= start) & (inner < stop))

    def test_deterministic_given_seed(self):
        X, y = _make_data(7)
        a = build_extra_trees(X, y, 4, rng=np.random.default_rng(21))
        b = build_extra_trees(X, y, 4, rng=np.random.default_rng(21))
        np.testing.assert_array_equal(a.packed.feature, b.packed.feature)
        np.testing.assert_array_equal(a.packed.threshold, b.packed.threshold)

    def test_respects_depth_and_split_limits(self):
        X, y = _make_data(8)
        built = build_extra_trees(
            X, y, 6, max_depth=3, min_samples_split=30,
            rng=np.random.default_rng(5),
        )
        assert built.depths.max() <= 3
        for i in range(6):
            tree = RegressionTree.from_arrays(*built.tree_arrays(i))
            assert tree.depth() <= 3

    def test_cart_bootstrap_shape_validation(self):
        X, y = _make_data(9)
        with pytest.raises(ValueError, match="sample_indices"):
            build_cart_forest(
                X, y, 3, rng=np.random.default_rng(0),
                sample_indices=np.zeros((2, 10), dtype=np.int64),
            )

    def test_max_features_subsampling_restricts_splits(self):
        """With one candidate feature per node, every chosen split
        feature is still a real feature index."""
        X, y = _make_data(10)
        built = build_extra_trees(
            X, y, 4, max_features=1, rng=np.random.default_rng(6)
        )
        chosen = built.packed.feature[built.packed.feature >= 0]
        assert chosen.size > 0
        assert np.all(chosen < X.shape[1])


class TestEnsembleBuilderSelection:
    def test_unknown_builder_rejected(self):
        for cls in (ExtraTreesRegressor, RandomForestRegressor):
            with pytest.raises(ValueError, match="tree_builder"):
                cls(tree_builder="nope")
        assert set(TREE_BUILDERS) == {"vectorized", "classic"}

    def test_classic_escape_hatch_preserves_old_stream(self):
        """tree_builder='classic' reproduces the original per-node
        grower bit for bit (same RNG consumption order)."""
        X, y = _make_data(12)
        model = ExtraTreesRegressor(
            n_estimators=4, seed=33, tree_builder="classic"
        ).fit(X, y)
        reference_rng = np.random.default_rng(33)
        reference = [
            RegressionTree(seed=reference_rng).fit(X, y) for _ in range(4)
        ]
        queries = np.random.default_rng(13).normal(size=(20, X.shape[1]))
        expected = np.stack([tree.predict(queries) for tree in reference])
        np.testing.assert_array_equal(
            model.predict(queries), expected.mean(axis=0)
        )

    @pytest.mark.parametrize("builder", TREE_BUILDERS)
    def test_random_forest_fits_and_predicts(self, builder):
        X, y = _make_data(14)
        forest = RandomForestRegressor(
            n_estimators=6, seed=2, tree_builder=builder
        ).fit(X, y)
        mean, std = forest.predict(X, return_std=True)
        rmse = float(np.sqrt(np.mean((mean - y) ** 2)))
        assert rmse < 1.0
        assert np.all(std >= 0)

    def test_builders_statistically_equivalent(self):
        """Same generalisation quality from both builders (they
        implement the same split rules)."""
        rng = np.random.default_rng(15)
        coef = rng.normal(size=6)
        X, Xq = rng.normal(size=(300, 6)), rng.normal(size=(300, 6))
        y = X @ coef + 0.05 * rng.normal(size=300)
        yq = Xq @ coef + 0.05 * rng.normal(size=300)
        errors = {}
        for builder in TREE_BUILDERS:
            model = ExtraTreesRegressor(
                n_estimators=20, seed=8, tree_builder=builder
            ).fit(X, y)
            errors[builder] = float(np.sqrt(np.mean((model.predict(Xq) - yq) ** 2)))
        ratio = errors["vectorized"] / errors["classic"]
        assert 0.8 < ratio < 1.25, errors
