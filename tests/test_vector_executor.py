"""Vectorized lock-step executor, stacked kernels, and ask/tell resume.

Three layers of bit-identity guarantees:

* the stacked surrogate primitives (``fit_ensembles_stacked``,
  ``predict_packed_many``, ``fit_gps_stacked``,
  ``stacked_stationary_value``, ``expected_improvement_stacked``) must
  reproduce their per-model serial counterparts exactly;
* a mid-flight :class:`~repro.core.smbo.SearchState` serialized with
  ``to_bytes`` and resumed with ``from_bytes`` must finish with the
  same :class:`~repro.core.result.SearchResult` as an uninterrupted
  run, on both the GP and the tree surrogate path, clean and faulty;
* ``run_cells(executor="vector")`` must yield the same results in the
  same order as the serial executor, for every optimiser family it can
  batch and for the fallback paths it cannot.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.acquisition import (
    expected_improvement,
    expected_improvement_stacked,
)
from repro.core.augmented_bo import AugmentedBO
from repro.core.baselines import RandomSearch
from repro.core.hybrid_bo import HybridBO
from repro.core.naive_bo import NaiveBO
from repro.core.objectives import Objective
from repro.core.smbo import SearchState
from repro.core.stopping import PredictionDeltaThreshold
from repro.faults import FaultInjector, RetryPolicy, parse_fault_plan
from repro.ml.extra_trees import ExtraTreesRegressor, fit_ensembles_stacked
from repro.ml.gp import GaussianProcessRegressor, fit_gps_stacked
from repro.ml.kernels import (
    RBF,
    Geometry,
    Matern12,
    Matern32,
    Matern52,
    stacked_stationary_value,
)
from repro.ml.tree import predict_packed, predict_packed_many
from repro.parallel import run_cells

WORKLOADS = (
    "kmeans/Spark 2.1/small",
    "lr/Spark 1.5/medium",
    "pagerank/Hadoop 2.7/small",
)


def tree_factory(environment, objective, seed):
    return AugmentedBO(
        environment,
        objective=objective,
        seed=seed,
        stopping=PredictionDeltaThreshold(),
    )


def gp_factory(environment, objective, seed):
    return NaiveBO(
        environment, objective=objective, seed=seed, max_measurements=8
    )


def hybrid_factory(environment, objective, seed):
    return HybridBO(
        environment, objective=objective, seed=seed, max_measurements=8
    )


def random_factory(environment, objective, seed):
    return RandomSearch(
        environment, objective=objective, seed=seed, max_measurements=6
    )


def faulty_tree_factory(environment, objective, seed):
    plan = parse_fault_plan("transient:rate=0.3", seed=seed)
    return AugmentedBO(
        FaultInjector(environment, plan),
        objective=objective,
        seed=seed,
        stopping=PredictionDeltaThreshold(),
        retry_policy=RetryPolicy(max_attempts=3),
    )


def faulty_gp_factory(environment, objective, seed):
    plan = parse_fault_plan("transient:rate=0.3", seed=seed)
    return NaiveBO(
        FaultInjector(environment, plan),
        objective=objective,
        seed=seed,
        max_measurements=8,
        retry_policy=RetryPolicy(max_attempts=3),
    )


# ---------------------------------------------------------------------------
# Ask/tell: serialize mid-flight, resume, finish bit-identical.
# ---------------------------------------------------------------------------


class TestAskTellResume:
    FACTORIES = {
        "tree": tree_factory,
        "gp": gp_factory,
        "faulty-tree": faulty_tree_factory,
        "faulty-gp": faulty_gp_factory,
    }

    @pytest.mark.parametrize("kind", sorted(FACTORIES))
    @pytest.mark.parametrize("steps_before", [1, 4])
    def test_resume_matches_uninterrupted(self, trace, kind, steps_before):
        factory = self.FACTORIES[kind]
        environment = trace.environment(WORKLOADS[0])
        baseline = factory(environment, Objective.TIME, seed=3).run()

        state = factory(
            trace.environment(WORKLOADS[0]), Objective.TIME, seed=3
        ).start()
        for _ in range(steps_before):
            if not state.step():
                break
        payload = state.to_bytes()

        resumed = SearchState.from_bytes(payload)
        assert resumed.phase == state.phase
        while resumed.step():
            pass
        assert resumed.result() == baseline

    def test_stepping_matches_run(self, trace):
        baseline = tree_factory(
            trace.environment(WORKLOADS[1]), Objective.TIME, seed=0
        ).run()
        state = tree_factory(
            trace.environment(WORKLOADS[1]), Objective.TIME, seed=0
        ).start()
        while state.step():
            pass
        assert state.result() == baseline

    def test_serialized_copy_is_independent(self, trace):
        state = gp_factory(
            trace.environment(WORKLOADS[2]), Objective.TIME, seed=5
        ).start()
        state.step()
        payload = state.to_bytes()
        # Driving the original further must not leak into the snapshot.
        while state.step():
            pass
        resumed = SearchState.from_bytes(payload)
        while resumed.step():
            pass
        assert resumed.result() == state.result()

    def test_from_bytes_rejects_foreign_payloads(self):
        import pickle

        with pytest.raises(TypeError):
            SearchState.from_bytes(pickle.dumps({"not": "a search"}))

    def test_result_unavailable_while_live(self, trace):
        state = tree_factory(
            trace.environment(WORKLOADS[0]), Objective.TIME, seed=1
        ).start()
        with pytest.raises(RuntimeError):
            state.result()


# ---------------------------------------------------------------------------
# Stacked surrogate primitives vs their serial counterparts.
# ---------------------------------------------------------------------------


def _datasets(seed, count, n, d):
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(count):
        X = rng.normal(size=(n, d))
        y = rng.normal(size=n)
        out.append((X, y))
    return out


class TestStackedKernelValue:
    @pytest.mark.parametrize("cls", [RBF, Matern12, Matern32, Matern52])
    def test_matches_per_kernel_value(self, cls):
        datasets = _datasets(11, 4, 6, 3)
        kernels = [
            cls(lengthscale=0.5 + 0.3 * i, variance=1.0 + 0.1 * i)
            for i in range(len(datasets))
        ]
        geometries = [Geometry(X) for X, _ in datasets]
        stacked = stacked_stationary_value(kernels, geometries)
        for index, (kernel, geometry) in enumerate(zip(kernels, geometries)):
            np.testing.assert_array_equal(
                stacked[index], kernel.value(geometry)
            )

    def test_rejects_mixed_kernel_classes(self):
        datasets = _datasets(2, 2, 5, 2)
        geometries = [Geometry(X) for X, _ in datasets]
        with pytest.raises(NotImplementedError):
            stacked_stationary_value([RBF(), Matern52()], geometries)

    def test_rejects_ard_kernels(self):
        datasets = _datasets(3, 2, 5, 2)
        geometries = [Geometry(X) for X, _ in datasets]
        kernels = [Matern52(lengthscale=np.ones(2)) for _ in datasets]
        with pytest.raises(NotImplementedError):
            stacked_stationary_value(kernels, geometries)

    def test_rejects_empty_and_ragged_groups(self):
        with pytest.raises(ValueError):
            stacked_stationary_value([], [])
        small, large = _datasets(4, 1, 4, 2)[0], _datasets(5, 1, 6, 2)[0]
        with pytest.raises(ValueError):
            stacked_stationary_value(
                [Matern52(), Matern52()],
                [Geometry(small[0]), Geometry(large[0])],
            )


class TestFitGpsStacked:
    def _pairs(self, count, seed=21, kernel=None, **gp_kwargs):
        datasets = _datasets(seed, count, 7, 3)
        serial, stacked = [], []
        for index in range(count):
            k = kernel() if kernel is not None else None
            serial.append(
                GaussianProcessRegressor(kernel=k, seed=index, **gp_kwargs)
            )
            k = kernel() if kernel is not None else None
            stacked.append(
                GaussianProcessRegressor(kernel=k, seed=index, **gp_kwargs)
            )
        return datasets, serial, stacked

    def _assert_same_state(self, serial, stacked, datasets):
        for gp_a, gp_b, (X, _) in zip(serial, stacked, datasets):
            np.testing.assert_array_equal(gp_a._L, gp_b._L)
            np.testing.assert_array_equal(gp_a._alpha, gp_b._alpha)
            np.testing.assert_array_equal(
                gp_a.kernel.theta, gp_b.kernel.theta
            )
            assert gp_a.noise == gp_b.noise
            assert gp_a.n_fits == gp_b.n_fits
            assert gp_a.n_kernel_builds == gp_b.n_kernel_builds
            mean_a, std_a = gp_a.predict(X, return_std=True)
            mean_b, std_b = gp_b.predict(X, return_std=True)
            np.testing.assert_array_equal(mean_a, mean_b)
            np.testing.assert_array_equal(std_a, std_b)

    def test_matches_per_gp_fit(self):
        datasets, serial, stacked = self._pairs(3)
        for gp, (X, y) in zip(serial, datasets):
            gp.fit(X, y)
        fit_gps_stacked(
            stacked, [X for X, _ in datasets], [y for _, y in datasets]
        )
        self._assert_same_state(serial, stacked, datasets)

    def test_matches_with_precomputed_geometry(self):
        datasets, serial, stacked = self._pairs(3, seed=22, optimise=False)
        geometries = [Geometry(X) for X, _ in datasets]
        for gp, (X, y), geometry in zip(serial, datasets, geometries):
            gp.fit(X, y, geometry=geometry)
        fit_gps_stacked(
            stacked,
            [X for X, _ in datasets],
            [y for _, y in datasets],
            geometries,
        )
        self._assert_same_state(serial, stacked, datasets)

    def test_mixed_kernel_group_falls_back_identically(self):
        datasets = _datasets(23, 2, 7, 3)
        serial = [
            GaussianProcessRegressor(kernel=RBF(), seed=0),
            GaussianProcessRegressor(kernel=Matern52(), seed=1),
        ]
        stacked = [
            GaussianProcessRegressor(kernel=RBF(), seed=0),
            GaussianProcessRegressor(kernel=Matern52(), seed=1),
        ]
        for gp, (X, y) in zip(serial, datasets):
            gp.fit(X, y)
        fit_gps_stacked(
            stacked, [X for X, _ in datasets], [y for _, y in datasets]
        )
        self._assert_same_state(serial, stacked, datasets)

    def test_rejects_mismatched_lengths(self):
        datasets, _, stacked = self._pairs(2, seed=24)
        with pytest.raises(ValueError):
            fit_gps_stacked(stacked, [datasets[0][0]], [d[1] for d in datasets])


class TestExpectedImprovementStacked:
    def test_matches_per_row_ei(self):
        rng = np.random.default_rng(31)
        mean = rng.normal(size=(4, 9))
        std = np.abs(rng.normal(size=(4, 9)))
        std[1, 3] = 0.0  # degenerate-posterior entry
        std[2, :] = 0.0  # fully degenerate row
        best = rng.normal(size=4)
        stacked = expected_improvement_stacked(mean, std, best)
        for row in range(4):
            np.testing.assert_array_equal(
                stacked[row],
                expected_improvement(mean[row], std[row], float(best[row])),
            )

    def test_rejects_bad_shapes(self):
        mean = np.zeros((2, 3))
        with pytest.raises(ValueError):
            expected_improvement_stacked(mean, np.zeros((2, 4)), np.zeros(2))
        with pytest.raises(ValueError):
            expected_improvement_stacked(mean, np.zeros((2, 3)), np.zeros(3))
        with pytest.raises(ValueError):
            expected_improvement_stacked(
                np.zeros(3), np.zeros(3), np.zeros(1)
            )

    def test_rejects_negative_std(self):
        with pytest.raises(ValueError):
            expected_improvement_stacked(
                np.zeros((1, 2)), np.array([[1.0, -0.1]]), np.zeros(1)
            )


class TestFitEnsemblesStacked:
    def _pairs(self, count, **kwargs):
        datasets = _datasets(41, count, 12, 4)
        serial = [
            ExtraTreesRegressor(n_estimators=5, seed=index, **kwargs)
            for index in range(count)
        ]
        stacked = [
            ExtraTreesRegressor(n_estimators=5, seed=index, **kwargs)
            for index in range(count)
        ]
        return datasets, serial, stacked

    def test_matches_per_model_fit(self):
        datasets, serial, stacked = self._pairs(3)
        for model, (X, y) in zip(serial, datasets):
            model.fit(X, y)
        fit_ensembles_stacked(stacked, datasets)
        for model_a, model_b, (X, _) in zip(serial, stacked, datasets):
            np.testing.assert_array_equal(
                model_a.predict(X), model_b.predict(X)
            )
            np.testing.assert_array_equal(
                model_a._packed.value, model_b._packed.value
            )

    def test_rejects_classic_builder_models(self):
        datasets, _, stacked = self._pairs(2, tree_builder="classic")
        with pytest.raises(ValueError):
            fit_ensembles_stacked(stacked, datasets)

    def test_predict_packed_many_matches_per_ensemble(self):
        datasets, serial, _ = self._pairs(3)
        rng = np.random.default_rng(7)
        queries = [rng.normal(size=(n, 4)) for n in (5, 1, 8)]
        for model, (X, y) in zip(serial, datasets):
            model.fit(X, y)
        packeds = [model._packed for model in serial]
        batched = predict_packed_many(packeds, queries)
        for packed, X, result in zip(packeds, queries, batched):
            np.testing.assert_array_equal(result, predict_packed(packed, X))


# ---------------------------------------------------------------------------
# The vectorized executor end to end.
# ---------------------------------------------------------------------------


def _grid_cells(repeats=2):
    return [
        (workload_id, repeat)
        for workload_id in WORKLOADS
        for repeat in range(repeats)
    ]


def _run_grid(trace, factory, executor, on_event=None):
    return list(
        run_cells(
            trace,
            factory,
            Objective.TIME,
            _grid_cells(),
            workers=1,
            executor=executor,
            on_event=on_event,
        )
    )


class TestVectorExecutor:
    @pytest.mark.parametrize(
        "factory",
        [tree_factory, gp_factory, hybrid_factory, faulty_tree_factory],
        ids=["tree", "gp", "hybrid", "faulty-tree"],
    )
    def test_matches_serial_executor(self, trace, factory):
        serial = _run_grid(trace, factory, "serial")
        vector = _run_grid(trace, factory, "vector")
        assert [cell for cell, _ in serial] == [cell for cell, _ in vector]
        assert serial == vector

    def test_non_stackable_optimizers_still_match(self, trace):
        serial = _run_grid(trace, random_factory, "serial")
        vector = _run_grid(trace, random_factory, "vector")
        assert serial == vector

    def test_emits_vector_planned_and_cell_lifecycle(self, trace):
        events = []
        _run_grid(trace, tree_factory, "vector", on_event=events.append)
        kinds = [event.kind for event in events]
        assert kinds.count("vector_planned") == 1
        assert kinds.index("vector_planned") == 0
        cells = _grid_cells()
        scheduled = [
            (event.workload_id, event.repeat)
            for event in events
            if event.kind == "cell_scheduled"
        ]
        finished = {
            (event.workload_id, event.repeat)
            for event in events
            if event.kind == "cell_finished"
        }
        assert scheduled == cells
        assert finished == set(cells)

    def test_driver_counts_stacked_rounds(self, trace):
        from repro.parallel.vector import VectorizedGridDriver
        from repro.analysis.runner import run_seed

        driver = VectorizedGridDriver(
            trace, tree_factory, Objective.TIME, _grid_cells(), seed_fn=run_seed
        )
        results = list(driver.run())
        assert len(results) == len(_grid_cells())
        assert driver.rounds > 0
        assert driver.stacked_tree_fits > 0
        assert driver.fallback_rounds == 0

    def test_gp_grid_uses_stacked_fits(self, trace):
        from repro.parallel.vector import VectorizedGridDriver
        from repro.analysis.runner import run_seed

        driver = VectorizedGridDriver(
            trace, gp_factory, Objective.TIME, _grid_cells(), seed_fn=run_seed
        )
        list(driver.run())
        assert driver.stacked_gp_fits > 0

    def test_runner_cache_is_byte_identical(self, trace, tmp_path):
        from repro.analysis.runner import ExperimentRunner, RunGrid

        grid = RunGrid(
            key="vector-cache",
            factory=tree_factory,
            objective=Objective.TIME,
            workload_ids=WORKLOADS,
            repeats=2,
        )
        caches = {}
        for executor in ("serial", "vector"):
            cache_dir = tmp_path / executor
            runner = ExperimentRunner(trace, cache_dir=cache_dir)
            runner.run(grid, workers=1, executor=executor)
            caches[executor] = (
                cache_dir / "vector-cache__time.json"
            ).read_bytes()
        assert caches["serial"] == caches["vector"]
