"""Unit tests for evaluation metrics."""

import numpy as np
import pytest

from repro.analysis.metrics import (
    Outcome,
    compare_methods,
    cost_to_optimum,
    outcome_counts,
    solved_fraction_curve,
)
from repro.core.objectives import Objective
from repro.core.result import SearchResult, SearchStep


def make_result(values, workload_id="w", stopped_by="criterion"):
    steps = []
    best = float("inf")
    for index, value in enumerate(values, start=1):
        best = min(best, value)
        steps.append(SearchStep(index, f"vm{index}", value, best))
    return SearchResult(
        optimizer="x",
        objective=Objective.COST,
        workload_id=workload_id,
        steps=tuple(steps),
        stopped_by=stopped_by,
    )


class TestCostToOptimum:
    def test_finds_first_reaching_step(self):
        result = make_result([5.0, 2.0, 3.0])
        assert cost_to_optimum(result, 2.0) == 2

    def test_none_when_never_reached(self):
        assert cost_to_optimum(make_result([5.0, 3.0]), 1.0) is None


class TestSolvedFractionCurve:
    def test_monotone_nondecreasing(self):
        costs = {"a": [3, 5], "b": [10, 12], "c": [None, 4]}
        curve = solved_fraction_curve(costs, 18)
        assert np.all(np.diff(curve) >= 0)

    def test_known_values(self):
        costs = {"a": [2, 2, 2], "b": [8, 8, 8]}
        curve = solved_fraction_curve(costs, 10)
        assert curve[0] == 0.0
        assert curve[1] == 0.5
        assert curve[7] == 1.0

    def test_median_semantics(self):
        # Median of [2, 18-unfound] with None -> (2+19)/2 = 10.5 -> solved at 11.
        curve = solved_fraction_curve({"a": [2, None]}, 18)
        assert curve[9] == 0.0
        assert curve[10] == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            solved_fraction_curve({}, 18)
        with pytest.raises(ValueError):
            solved_fraction_curve({"a": [1]}, 0)


class TestCompareMethods:
    def _methods(self, base_cost, base_val, chal_cost, chal_val):
        baseline = {"w": [make_result([base_val] * base_cost)]}
        challenger = {"w": [make_result([chal_val] * chal_cost)]}
        return baseline, challenger

    def test_win_quadrant(self):
        baseline, challenger = self._methods(10, 100.0, 7, 90.0)
        (comparison,) = compare_methods(baseline, challenger)
        assert comparison.outcome is Outcome.WIN
        assert comparison.search_reduction == pytest.approx(0.3)
        assert comparison.value_improvement == pytest.approx(0.1)

    def test_loss_quadrant_on_higher_search_cost(self):
        baseline, challenger = self._methods(7, 100.0, 10, 90.0)
        (comparison,) = compare_methods(baseline, challenger)
        assert comparison.outcome is Outcome.LOSS

    def test_draw_quadrant_trades_value_for_search(self):
        baseline, challenger = self._methods(10, 100.0, 6, 110.0)
        (comparison,) = compare_methods(baseline, challenger)
        assert comparison.outcome is Outcome.DRAW

    def test_same_quadrant_within_tolerance(self):
        baseline, challenger = self._methods(10, 100.0, 10, 100.0)
        (comparison,) = compare_methods(baseline, challenger)
        assert comparison.outcome is Outcome.SAME

    def test_medians_across_repeats(self):
        baseline = {"w": [make_result([100.0] * c) for c in (8, 10, 12)]}
        challenger = {"w": [make_result([100.0] * c) for c in (5, 6, 7)]}
        (comparison,) = compare_methods(baseline, challenger)
        assert comparison.search_reduction == pytest.approx((10 - 6) / 10)

    def test_mismatched_workloads_rejected(self):
        with pytest.raises(ValueError, match="same workloads"):
            compare_methods({"a": []}, {"b": []})

    def test_outcome_counts(self):
        baseline = {
            "w1": [make_result([100.0] * 10)],
            "w2": [make_result([100.0] * 10)],
        }
        challenger = {
            "w1": [make_result([90.0] * 7)],   # win
            "w2": [make_result([100.0] * 10)],  # same
        }
        counts = outcome_counts(compare_methods(baseline, challenger))
        assert counts[Outcome.WIN] == 1
        assert counts[Outcome.SAME] == 1
        assert counts[Outcome.LOSS] == 0
