"""Unit tests for Region I/II/III classification."""

import pytest

from repro.analysis.regions import (
    Region,
    classify_region,
    region_bounds,
    region_counts,
)


class TestRegionBounds:
    def test_paper_defaults_preserved(self):
        assert region_bounds() == (6, 12)
        assert region_bounds(18) == (6, 12)

    def test_scales_with_catalog_size(self):
        assert region_bounds(210) == (70, 140)
        assert region_bounds(390) == (130, 260)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError, match="catalog_size"):
            region_bounds(0)

    def test_classification_uses_scaled_bounds(self):
        # 13 measurements of 18 is Region III, but of 210 it's Region I.
        assert classify_region([13, 13]) is Region.III
        assert classify_region([13, 13], catalog_size=210) is Region.I


class TestClassifyRegion:
    def test_region_boundaries(self):
        assert classify_region([6, 6, 6]) is Region.I
        assert classify_region([7, 7, 7]) is Region.II
        assert classify_region([12, 12]) is Region.II
        assert classify_region([13, 13]) is Region.III

    def test_median_decides(self):
        assert classify_region([1, 6, 18]) is Region.I
        assert classify_region([5, 8, 9]) is Region.II

    def test_none_counts_as_full_sweep(self):
        assert classify_region([None, None, None]) is Region.III
        assert classify_region([4, None, 5]) is Region.I

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            classify_region([])

    def test_string_names_match_paper(self):
        assert str(Region.I) == "Region I"
        assert str(Region.III) == "Region III"


class TestRegionCounts:
    def test_counts_cover_all_regions(self):
        counts = region_counts(
            {
                "a": [3, 3],
                "b": [8, 8],
                "c": [15, 15],
                "d": [5, 5],
            }
        )
        assert counts == {Region.I: 2, Region.II: 1, Region.III: 1}

    def test_absent_regions_count_zero(self):
        counts = region_counts({"a": [2]})
        assert counts[Region.II] == 0
        assert counts[Region.III] == 0

    def test_total_conserved(self):
        costs = {f"w{i}": [i % 18 + 1] for i in range(30)}
        counts = region_counts(costs)
        assert sum(counts.values()) == 30
