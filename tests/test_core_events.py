"""Structured per-search event stream (SearchEvent)."""

from __future__ import annotations

import pytest

from repro.analysis.runner import _result_from_json, _result_to_json, _valid_payload
from repro.core.baselines import RandomSearch
from repro.core.events import EVENT_KINDS, SearchEvent
from repro.core.objectives import Objective
from repro.faults import FaultInjector, RetryPolicy, parse_fault_plan

WORKLOAD = "kmeans/Spark 2.1/small"


class TestSearchEvent:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            SearchEvent(kind="nonsense", step=1)

    def test_rejects_bad_step(self):
        with pytest.raises(ValueError, match="step"):
            SearchEvent(kind="measurement_started", step=0)


class TestEmission:
    def test_fault_free_stream_shape(self, trace):
        result = RandomSearch(
            trace.environment(WORKLOAD), seed=0, max_measurements=5
        ).run()
        kinds = [event.kind for event in result.events]
        assert set(kinds) <= set(EVENT_KINDS)
        # One started + one finished per successful measurement, one
        # surrogate fit per acquisition round after the initial design.
        assert kinds.count("measurement_started") == result.search_cost
        assert kinds.count("measurement_finished") == result.search_cost
        assert kinds.count("measurement_failed") == 0
        assert kinds.count("surrogate_fitted") == result.search_cost - 3

    def test_started_precedes_finished_per_step(self, trace):
        result = RandomSearch(
            trace.environment(WORKLOAD), seed=1, max_measurements=5
        ).run()
        for step_record in result.steps:
            step_events = [e for e in result.events if e.step == step_record.step]
            lifecycle = [
                e.kind for e in step_events if e.kind.startswith("measurement")
            ]
            assert lifecycle[0] == "measurement_started"
            assert lifecycle[-1] == "measurement_finished"
            assert step_events[-1].vm_name == step_record.vm_name

    def test_failures_and_quarantine_appear(self, trace):
        plan = parse_fault_plan("outage:vm=c4.large", seed=0)
        result = RandomSearch(
            FaultInjector(trace.environment(WORKLOAD), plan),
            objective=Objective.TIME,
            seed=3,
            retry_policy=RetryPolicy(max_attempts=4),
            quarantine_after=3,
        ).run()
        assert "c4.large" in result.quarantined_vms
        kinds = [event.kind for event in result.events]
        assert "measurement_failed" in kinds
        quarantines = [e for e in result.events if e.kind == "vm_quarantined"]
        assert [e.vm_name for e in quarantines] == ["c4.large"]

    def test_rerun_resets_the_stream(self, trace):
        # A second run must not accumulate the first run's events (the
        # searches themselves differ: RandomSearch's RNG stream advances).
        optimizer = RandomSearch(
            trace.environment(WORKLOAD), seed=0, max_measurements=5
        )
        first = optimizer.run()
        second = optimizer.run()
        for result in (first, second):
            kinds = [event.kind for event in result.events]
            assert kinds.count("measurement_finished") == result.search_cost


class TestStoppingRuleFired:
    def test_fired_criterion_emits_event(self, trace):
        from repro.core.stopping import MaxMeasurements

        result = RandomSearch(
            trace.environment(WORKLOAD), seed=0, stopping=MaxMeasurements(4)
        ).run()
        assert result.stopped_by == "criterion"
        fired = [e for e in result.events if e.kind == "stopping_rule_fired"]
        assert len(fired) == 1
        assert fired[0].detail == "MaxMeasurements(budget=4)"
        assert fired[0].step == result.search_cost + 1
        # It is the last event of the stream: nothing happens after it.
        assert result.events[-1] is fired[0]

    def test_exhausted_search_emits_no_stopping_event(self, trace):
        result = RandomSearch(trace.environment(WORKLOAD), seed=0).run()
        assert result.stopped_by == "exhausted"
        assert all(e.kind != "stopping_rule_fired" for e in result.events)

    def test_budget_stop_emits_no_stopping_event(self, trace):
        result = RandomSearch(
            trace.environment(WORKLOAD), seed=0, max_measurements=5
        ).run()
        assert result.stopped_by == "budget"
        assert all(e.kind != "stopping_rule_fired" for e in result.events)

    def test_event_survives_cache_roundtrip(self, trace):
        from repro.core.stopping import MaxMeasurements

        result = RandomSearch(
            trace.environment(WORKLOAD), seed=1, stopping=MaxMeasurements(4)
        ).run()
        payload = _result_to_json(result)
        assert _valid_payload(payload)
        restored = _result_from_json(payload, result.objective, WORKLOAD)
        assert restored == result
        fired = [e for e in restored.events if e.kind == "stopping_rule_fired"]
        assert [e.detail for e in fired] == ["MaxMeasurements(budget=4)"]


class TestCacheRoundtrip:
    def test_events_survive_json_roundtrip(self, trace):
        result = RandomSearch(
            trace.environment(WORKLOAD), seed=2, max_measurements=6
        ).run()
        payload = _result_to_json(result)
        assert _valid_payload(payload)
        restored = _result_from_json(payload, result.objective, WORKLOAD)
        assert restored == result

    def test_payload_without_events_is_still_valid(self, trace):
        result = RandomSearch(
            trace.environment(WORKLOAD), seed=2, max_measurements=6
        ).run()
        payload = _result_to_json(result)
        del payload["events"]
        assert _valid_payload(payload)
        restored = _result_from_json(payload, result.objective, WORKLOAD)
        assert restored.events == ()

    def test_malformed_events_rejected(self, trace):
        result = RandomSearch(
            trace.environment(WORKLOAD), seed=2, max_measurements=6
        ).run()
        payload = _result_to_json(result)
        payload["events"] = [["not-a-kind", 1, None, ""]]
        assert not _valid_payload(payload)
        payload["events"] = [["measurement_started", 0, None, ""]]
        assert not _valid_payload(payload)
