"""Unit tests for the fault-injection subsystem (repro.faults)."""

import numpy as np
import pytest

from repro.faults import (
    CircuitBreaker,
    CorruptedMeasurements,
    FaultInjector,
    FaultPlan,
    PermanentOutage,
    RetryPolicy,
    SpotInterruptionError,
    SpotInterruptions,
    Stragglers,
    TransientTimeoutError,
    TransientTimeouts,
    VMUnavailableError,
    parse_fault_plan,
)

WORKLOAD = "kmeans/Spark 2.1/small"


@pytest.fixture()
def env(trace):
    return trace.environment(WORKLOAD)


def injector(env, *rules, seed=0):
    return FaultInjector(env, FaultPlan(tuple(rules), seed=seed))


class TestFaultInjector:
    def test_periodic_timeouts_fire_on_schedule(self, env):
        faulty = injector(env, TransientTimeouts(every=3))
        vm = env.catalog[0]
        outcomes = []
        for _ in range(9):
            try:
                faulty.measure(vm)
                outcomes.append("ok")
            except TransientTimeoutError:
                outcomes.append("fail")
        assert outcomes == ["ok", "ok", "fail"] * 3

    def test_failed_attempts_are_charged(self, env):
        faulty = injector(env, TransientTimeouts(every=2))
        vm = env.catalog[0]
        for _ in range(4):
            try:
                faulty.measure(vm)
            except TransientTimeoutError:
                pass
        assert faulty.measurement_count == 4  # 2 successes + 2 failures

    def test_random_faults_deterministic_under_seed(self, env, trace):
        def pattern(seed):
            faulty = injector(trace.environment(WORKLOAD), TransientTimeouts(rate=0.4), seed=seed)
            vm = faulty.catalog[0]
            out = []
            for _ in range(40):
                try:
                    faulty.measure(vm)
                    out.append(True)
                except TransientTimeoutError:
                    out.append(False)
            return out

        assert pattern(7) == pattern(7)
        assert pattern(7) != pattern(8)

    def test_reset_rewinds_the_fault_plan(self, env):
        faulty = injector(env, TransientTimeouts(rate=0.5), seed=3)
        vm = env.catalog[0]

        def sweep():
            out = []
            for _ in range(20):
                try:
                    faulty.measure(vm)
                    out.append(True)
                except TransientTimeoutError:
                    out.append(False)
            return out

        first = sweep()
        faulty.reset()
        assert sweep() == first
        assert faulty.measurement_count == 20

    def test_permanent_outage_only_hits_named_vms(self, env):
        faulty = injector(env, PermanentOutage("c3.large"))
        with pytest.raises(VMUnavailableError, match="c3.large"):
            faulty.measure(env.catalog[0])
        assert faulty.measure(env.catalog[1]).execution_time_s > 0

    def test_spot_interruption_error_type(self, env):
        faulty = injector(env, SpotInterruptions(every=1))
        with pytest.raises(SpotInterruptionError, match="reclaimed"):
            faulty.measure(env.catalog[0])

    def test_corruption_nan_mode(self, env):
        faulty = injector(env, CorruptedMeasurements(every=1, mode="nan"))
        m = faulty.measure(env.catalog[0])
        assert np.isnan(m.execution_time_s) and np.isnan(m.cost_usd)

    def test_corruption_negative_mode(self, env):
        faulty = injector(env, CorruptedMeasurements(every=1, mode="negative"))
        m = faulty.measure(env.catalog[0])
        assert m.execution_time_s < 0 and m.cost_usd < 0

    def test_stragglers_inflate_time_and_cost(self, env):
        clean = env.measure(env.catalog[0])
        faulty = injector(env, Stragglers(every=1, slowdown=4.0))
        slow = faulty.measure(env.catalog[0])
        assert slow.execution_time_s == pytest.approx(4.0 * clean.execution_time_s)
        assert slow.cost_usd == pytest.approx(4.0 * clean.cost_usd)

    def test_rules_compose_in_order(self, env):
        faulty = injector(
            env, TransientTimeouts(every=2), Stragglers(every=1, slowdown=2.0)
        )
        vm = env.catalog[0]
        first = faulty.measure(vm)  # straggler applies
        with pytest.raises(TransientTimeoutError):
            faulty.measure(vm)  # timeout hides the call from the straggler
        assert first.execution_time_s > 0

    def test_exposes_workload_and_catalog(self, env):
        faulty = injector(env, TransientTimeouts(every=2))
        assert faulty.catalog == env.catalog
        assert faulty.workload is env.workload

    def test_empty_plan_rejected(self):
        with pytest.raises(ValueError, match="at least one rule"):
            FaultPlan(())

    def test_rule_validation(self):
        with pytest.raises(ValueError, match="rate"):
            TransientTimeouts(rate=1.5)
        with pytest.raises(ValueError, match="every"):
            TransientTimeouts(every=0)
        with pytest.raises(ValueError, match="not both"):
            TransientTimeouts(rate=0.5, every=3)
        with pytest.raises(ValueError, match="mode"):
            CorruptedMeasurements(rate=0.1, mode="garbage")
        with pytest.raises(ValueError, match="slowdown"):
            Stragglers(rate=0.1, slowdown=0.5)
        with pytest.raises(ValueError, match="at least one VM"):
            PermanentOutage()


class TestParseFaultPlan:
    def test_single_rule(self):
        plan = parse_fault_plan("transient:rate=0.3", seed=5)
        assert plan.seed == 5
        (rule,) = plan.rules
        assert isinstance(rule, TransientTimeouts)
        assert rule.rate == pytest.approx(0.3)

    def test_composite_plan(self):
        plan = parse_fault_plan(
            "transient:every=3+outage:vm=c3.large|m3.large"
            "+straggler:rate=0.1,slowdown=3+corrupt:rate=0.05,mode=negative"
        )
        kinds = [type(rule).__name__ for rule in plan.rules]
        assert kinds == [
            "TransientTimeouts", "PermanentOutage", "Stragglers", "CorruptedMeasurements",
        ]
        assert plan.rules[1].vm_names == frozenset({"c3.large", "m3.large"})
        assert plan.rules[2].slowdown == pytest.approx(3.0)
        assert plan.rules[3].mode == "negative"

    @pytest.mark.parametrize(
        "spec",
        [
            "nope:rate=0.1",
            "transient:rate",
            "transient:speed=3",
            "outage",
            "straggler:rate=0.1,slowdown=0.2",
            "",
            "transient:rate=0.3++spot:rate=0.1",
        ],
    )
    def test_bad_specs_raise_value_error(self, spec):
        with pytest.raises(ValueError):
            parse_fault_plan(spec)


class TestRetryPolicy:
    def test_exponential_delays_with_cap(self):
        policy = RetryPolicy(
            max_attempts=6, backoff_base_s=1.0, backoff_factor=2.0,
            backoff_max_s=5.0, jitter=0.0,
        )
        rng = np.random.default_rng(0)
        delays = [policy.delay_for(k, rng) for k in range(1, 6)]
        assert delays == pytest.approx([1.0, 2.0, 4.0, 5.0, 5.0])

    def test_jitter_is_deterministic_given_rng(self):
        policy = RetryPolicy(max_attempts=3, backoff_base_s=1.0, jitter=0.5)
        a = [policy.delay_for(k, np.random.default_rng(1)) for k in (1, 2)]
        b = [policy.delay_for(k, np.random.default_rng(1)) for k in (1, 2)]
        assert a == b
        # jitter shrinks the delay by at most 50%
        assert 0.5 <= a[0] <= 1.0

    def test_sleep_hook_receives_delays(self):
        slept = []
        policy = RetryPolicy(
            max_attempts=2, backoff_base_s=1.0, jitter=0.0, sleep=slept.append
        )
        policy.wait(1, np.random.default_rng(0))
        assert slept == [pytest.approx(1.0)]

    def test_from_retries_maps_counter_to_attempts(self):
        assert RetryPolicy.from_retries(0).max_attempts == 1
        assert RetryPolicy.from_retries(2).max_attempts == 3
        with pytest.raises(ValueError, match="measure_retries"):
            RetryPolicy.from_retries(-1)

    def test_delay_never_negative_never_above_cap(self):
        """The queue trusts these bounds for its requeue delays: a
        negative ``not_before`` would reorder claims, an uncapped one
        would park a cell effectively forever."""
        policy = RetryPolicy(
            max_attempts=10, backoff_base_s=0.5, backoff_factor=3.0,
            backoff_max_s=7.0, jitter=1.0,
        )
        rng = np.random.default_rng(42)
        for retry in list(range(1, 50)) + [500, 5000]:
            delay = policy.delay_for(retry, rng)
            assert 0.0 <= delay <= 7.0

    def test_huge_retry_index_saturates_at_cap_not_overflow(self):
        """float-pow overflow (factor ** ~1000s) must saturate at the
        cap, not raise: queue cells carry unbounded attempt counters."""
        policy = RetryPolicy(
            max_attempts=2, backoff_base_s=1.0, backoff_factor=10.0,
            backoff_max_s=30.0, jitter=0.0,
        )
        rng = np.random.default_rng(0)
        assert policy.delay_for(10_000, rng) == pytest.approx(30.0)

    def test_huge_retry_with_zero_base_stays_zero(self):
        policy = RetryPolicy(
            max_attempts=2, backoff_base_s=0.0, backoff_factor=10.0,
            backoff_max_s=30.0, jitter=0.0,
        )
        assert policy.delay_for(10_000, np.random.default_rng(0)) == 0.0

    def test_deterministic_under_fixed_seed(self):
        policy = RetryPolicy(
            max_attempts=5, backoff_base_s=1.0, backoff_factor=2.0,
            backoff_max_s=60.0, jitter=0.5,
        )
        a = [policy.delay_for(k, np.random.default_rng(7)) for k in range(1, 5)]
        b = [policy.delay_for(k, np.random.default_rng(7)) for k in range(1, 5)]
        assert a == b

    def test_zero_base_still_consumes_the_jitter_stream(self):
        """Configurations with and without backoff must stay aligned on
        the shared jitter stream."""
        rng = np.random.default_rng(3)
        RetryPolicy(backoff_base_s=0.0).delay_for(1, rng)
        after_zero = rng.random()
        rng = np.random.default_rng(3)
        RetryPolicy(backoff_base_s=1.0).delay_for(1, rng)
        after_one = rng.random()
        assert after_zero == after_one

    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="backoff_base_s"):
            RetryPolicy(backoff_base_s=-1)
        with pytest.raises(ValueError, match="backoff_factor"):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=2.0)
        with pytest.raises(ValueError, match="retry"):
            RetryPolicy().delay_for(0, np.random.default_rng(0))


class TestCircuitBreaker:
    def test_trips_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3)
        assert not breaker.record_failure("a")
        assert not breaker.record_failure("a")
        assert breaker.record_failure("a")
        assert breaker.is_quarantined("a")
        assert breaker.quarantined == frozenset({"a"})

    def test_success_resets_the_count(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure("a")
        breaker.record_success("a")
        assert not breaker.record_failure("a")
        assert not breaker.is_quarantined("a")

    def test_vms_are_tracked_independently(self):
        breaker = CircuitBreaker(failure_threshold=1)
        breaker.record_failure("a")
        assert breaker.is_quarantined("a")
        assert not breaker.is_quarantined("b")

    def test_reset_clears_everything(self):
        breaker = CircuitBreaker(failure_threshold=1)
        breaker.record_failure("a")
        breaker.reset()
        assert breaker.quarantined == frozenset()

    def test_threshold_validation(self):
        with pytest.raises(ValueError, match="failure_threshold"):
            CircuitBreaker(failure_threshold=0)
