"""Unit tests for the fault-injection subsystem (repro.faults)."""

import random

import numpy as np
import pytest

from repro.cloud.spot import SpotMarket
from repro.faults import (
    CircuitBreaker,
    CorruptedMeasurements,
    FaultInjector,
    FaultPlan,
    PermanentOutage,
    RetryPolicy,
    SpotInterruptionError,
    SpotInterruptions,
    Stragglers,
    TransientTimeoutError,
    TransientTimeouts,
    VMUnavailableError,
    format_fault_plan,
    parse_fault_plan,
)

WORKLOAD = "kmeans/Spark 2.1/small"


@pytest.fixture()
def env(trace):
    return trace.environment(WORKLOAD)


def injector(env, *rules, seed=0):
    return FaultInjector(env, FaultPlan(tuple(rules), seed=seed))


class TestFaultInjector:
    def test_periodic_timeouts_fire_on_schedule(self, env):
        faulty = injector(env, TransientTimeouts(every=3))
        vm = env.catalog[0]
        outcomes = []
        for _ in range(9):
            try:
                faulty.measure(vm)
                outcomes.append("ok")
            except TransientTimeoutError:
                outcomes.append("fail")
        assert outcomes == ["ok", "ok", "fail"] * 3

    def test_failed_attempts_are_charged(self, env):
        faulty = injector(env, TransientTimeouts(every=2))
        vm = env.catalog[0]
        for _ in range(4):
            try:
                faulty.measure(vm)
            except TransientTimeoutError:
                pass
        assert faulty.measurement_count == 4  # 2 successes + 2 failures

    def test_random_faults_deterministic_under_seed(self, env, trace):
        def pattern(seed):
            faulty = injector(trace.environment(WORKLOAD), TransientTimeouts(rate=0.4), seed=seed)
            vm = faulty.catalog[0]
            out = []
            for _ in range(40):
                try:
                    faulty.measure(vm)
                    out.append(True)
                except TransientTimeoutError:
                    out.append(False)
            return out

        assert pattern(7) == pattern(7)
        assert pattern(7) != pattern(8)

    def test_reset_rewinds_the_fault_plan(self, env):
        faulty = injector(env, TransientTimeouts(rate=0.5), seed=3)
        vm = env.catalog[0]

        def sweep():
            out = []
            for _ in range(20):
                try:
                    faulty.measure(vm)
                    out.append(True)
                except TransientTimeoutError:
                    out.append(False)
            return out

        first = sweep()
        faulty.reset()
        assert sweep() == first
        assert faulty.measurement_count == 20

    def test_permanent_outage_only_hits_named_vms(self, env):
        faulty = injector(env, PermanentOutage("c3.large"))
        with pytest.raises(VMUnavailableError, match="c3.large"):
            faulty.measure(env.catalog[0])
        assert faulty.measure(env.catalog[1]).execution_time_s > 0

    def test_spot_interruption_error_type(self, env):
        faulty = injector(env, SpotInterruptions(every=1))
        with pytest.raises(SpotInterruptionError, match="reclaimed"):
            faulty.measure(env.catalog[0])

    def test_corruption_nan_mode(self, env):
        faulty = injector(env, CorruptedMeasurements(every=1, mode="nan"))
        m = faulty.measure(env.catalog[0])
        assert np.isnan(m.execution_time_s) and np.isnan(m.cost_usd)

    def test_corruption_negative_mode(self, env):
        faulty = injector(env, CorruptedMeasurements(every=1, mode="negative"))
        m = faulty.measure(env.catalog[0])
        assert m.execution_time_s < 0 and m.cost_usd < 0

    def test_stragglers_inflate_time_and_cost(self, env):
        clean = env.measure(env.catalog[0])
        faulty = injector(env, Stragglers(every=1, slowdown=4.0))
        slow = faulty.measure(env.catalog[0])
        assert slow.execution_time_s == pytest.approx(4.0 * clean.execution_time_s)
        assert slow.cost_usd == pytest.approx(4.0 * clean.cost_usd)

    def test_rules_compose_in_order(self, env):
        faulty = injector(
            env, TransientTimeouts(every=2), Stragglers(every=1, slowdown=2.0)
        )
        vm = env.catalog[0]
        first = faulty.measure(vm)  # straggler applies
        with pytest.raises(TransientTimeoutError):
            faulty.measure(vm)  # timeout hides the call from the straggler
        assert first.execution_time_s > 0

    def test_exposes_workload_and_catalog(self, env):
        faulty = injector(env, TransientTimeouts(every=2))
        assert faulty.catalog == env.catalog
        assert faulty.workload is env.workload

    def test_empty_plan_rejected(self):
        with pytest.raises(ValueError, match="at least one rule"):
            FaultPlan(())

    def test_rule_validation(self):
        with pytest.raises(ValueError, match="rate"):
            TransientTimeouts(rate=1.5)
        with pytest.raises(ValueError, match="every"):
            TransientTimeouts(every=0)
        with pytest.raises(ValueError, match="not both"):
            TransientTimeouts(rate=0.5, every=3)
        with pytest.raises(ValueError, match="mode"):
            CorruptedMeasurements(rate=0.1, mode="garbage")
        with pytest.raises(ValueError, match="slowdown"):
            Stragglers(rate=0.1, slowdown=0.5)
        with pytest.raises(ValueError, match="at least one VM"):
            PermanentOutage()


class TestParseFaultPlan:
    def test_single_rule(self):
        plan = parse_fault_plan("transient:rate=0.3", seed=5)
        assert plan.seed == 5
        (rule,) = plan.rules
        assert isinstance(rule, TransientTimeouts)
        assert rule.rate == pytest.approx(0.3)

    def test_composite_plan(self):
        plan = parse_fault_plan(
            "transient:every=3+outage:vm=c3.large|m3.large"
            "+straggler:rate=0.1,slowdown=3+corrupt:rate=0.05,mode=negative"
        )
        kinds = [type(rule).__name__ for rule in plan.rules]
        assert kinds == [
            "TransientTimeouts", "PermanentOutage", "Stragglers", "CorruptedMeasurements",
        ]
        assert plan.rules[1].vm_names == frozenset({"c3.large", "m3.large"})
        assert plan.rules[2].slowdown == pytest.approx(3.0)
        assert plan.rules[3].mode == "negative"

    @pytest.mark.parametrize(
        "spec",
        [
            "nope:rate=0.1",
            "transient:rate",
            "transient:speed=3",
            "outage",
            "straggler:rate=0.1,slowdown=0.2",
            "",
            "transient:rate=0.3++spot:rate=0.1",
        ],
    )
    def test_bad_specs_raise_value_error(self, spec):
        with pytest.raises(ValueError):
            parse_fault_plan(spec)

    def test_market_spot_form(self):
        plan = parse_fault_plan("spot:market=7,base=0.1,slope=0.3", seed=2)
        (rule,) = plan.rules
        assert isinstance(rule, SpotInterruptions)
        assert rule.market == SpotMarket(seed=7, base_hazard=0.1, hazard_slope=0.3)

    def test_market_keys_exclude_trigger_keys(self):
        with pytest.raises(ValueError, match="market keys"):
            parse_fault_plan("spot:market=7,rate=0.1")


def _random_rule(rng: random.Random):
    kind = rng.choice(("transient", "spot", "spot-market", "outage",
                       "corrupt", "straggler"))
    # rate/every are mutually exclusive triggers; None rate means "use
    # every", and values are drawn coarse enough to stay in-range but
    # fine enough to exercise float repr round-tripping.
    rate = rng.choice((None, rng.uniform(0.01, 0.99)))
    every = rng.randint(1, 9)
    if kind == "transient":
        return TransientTimeouts(rate=rate) if rate else TransientTimeouts(every=every)
    if kind == "spot":
        return SpotInterruptions(rate=rate) if rate else SpotInterruptions(every=every)
    if kind == "spot-market":
        kwargs = {"seed": rng.randint(0, 999)}
        if rng.random() < 0.5:
            kwargs["min_discount"] = rng.uniform(0.0, 0.3)
        if rng.random() < 0.5:
            kwargs["max_discount"] = rng.uniform(0.8, 0.99)
        if rng.random() < 0.5:
            kwargs["base_hazard"] = rng.uniform(0.0, 0.5)
        if rng.random() < 0.5:
            kwargs["hazard_slope"] = rng.uniform(0.0, 2.0)
        if rng.random() < 0.5:
            kwargs["volatility"] = rng.uniform(0.0, 0.5)
        return SpotInterruptions(market=SpotMarket(**kwargs))
    if kind == "outage":
        names = rng.sample(("c3.large", "m3.xlarge", "r4.2xlarge", "i2.xlarge"),
                           rng.randint(1, 3))
        return PermanentOutage(*names)
    if kind == "corrupt":
        mode = rng.choice(("nan", "negative"))
        if rate:
            return CorruptedMeasurements(rate=rate, mode=mode)
        return CorruptedMeasurements(every=every, mode=mode)
    if rate:
        return Stragglers(rate=rate, slowdown=rng.uniform(1.5, 8.0))
    return Stragglers(every=every, slowdown=rng.uniform(1.5, 8.0))


class TestFaultPlanRoundTrip:
    """``parse(format(plan)) == plan`` over the whole mini-language.

    A seeded generative sweep (no external property-testing dependency):
    random rule stacks, including market-driven spot rules with float
    parameters, must survive the text form exactly — float params are
    rendered with ``repr`` so nothing drifts.
    """

    def test_random_plans_round_trip(self):
        rng = random.Random(1234)
        for case in range(200):
            rules = tuple(_random_rule(rng) for _ in range(rng.randint(1, 4)))
            plan = FaultPlan(rules, seed=rng.randint(0, 99))
            spec = format_fault_plan(plan)
            assert parse_fault_plan(spec, seed=plan.seed) == plan, (
                f"case {case}: {spec!r}"
            )

    def test_round_trip_preserves_float_params_exactly(self):
        plan = FaultPlan(
            (
                TransientTimeouts(rate=0.1 + 0.2),  # 0.30000000000000004
                Stragglers(rate=1 / 3, slowdown=7 / 3),
                SpotInterruptions(
                    market=SpotMarket(seed=3, base_hazard=0.1 / 7, hazard_slope=2 / 7)
                ),
            ),
            seed=9,
        )
        parsed = parse_fault_plan(format_fault_plan(plan), seed=9)
        assert parsed == plan
        assert parsed.rules[0].rate == plan.rules[0].rate
        assert parsed.rules[2].market.base_hazard == plan.rules[2].market.base_hazard

    def test_documented_example_round_trips(self):
        spec = "spot:rate=0.1+straggler:rate=0.05,slowdown=3.0+corrupt:rate=0.02"
        plan = parse_fault_plan(spec, seed=4)
        assert parse_fault_plan(format_fault_plan(plan), seed=4) == plan


class TestMarketSpotInterruptions:
    def test_revocation_error_carries_market_context(self, env):
        market = SpotMarket(seed=0, base_hazard=0.9, hazard_slope=0.0)
        faulty = injector(env, SpotInterruptions(market=market))
        vm = env.catalog[0]
        error = None
        for _ in range(50):
            try:
                faulty.measure(vm)
            except SpotInterruptionError as caught:
                error = caught
                break
        assert error is not None, "0.9 hazard never fired in 50 attempts"
        assert 0.0 <= error.fraction <= 1.0
        assert error.discount == pytest.approx(market.discount(vm.name))
        assert error.hazard == pytest.approx(market.hazard(vm.name))

    def test_set_pricing_exempts_on_demand_vms(self, env):
        market = SpotMarket(seed=0, base_hazard=0.9, hazard_slope=0.0)
        faulty = injector(env, SpotInterruptions(market=market))
        vm = env.catalog[0]
        faulty.set_pricing(vm.name, "on-demand")
        for _ in range(50):
            faulty.measure(vm)  # must never raise while on-demand
        faulty.set_pricing(vm.name, "spot")
        with pytest.raises(SpotInterruptionError):
            for _ in range(50):
                faulty.measure(vm)


class TestRetryPolicy:
    def test_exponential_delays_with_cap(self):
        policy = RetryPolicy(
            max_attempts=6, backoff_base_s=1.0, backoff_factor=2.0,
            backoff_max_s=5.0, jitter=0.0,
        )
        rng = np.random.default_rng(0)
        delays = [policy.delay_for(k, rng) for k in range(1, 6)]
        assert delays == pytest.approx([1.0, 2.0, 4.0, 5.0, 5.0])

    def test_jitter_is_deterministic_given_rng(self):
        policy = RetryPolicy(max_attempts=3, backoff_base_s=1.0, jitter=0.5)
        a = [policy.delay_for(k, np.random.default_rng(1)) for k in (1, 2)]
        b = [policy.delay_for(k, np.random.default_rng(1)) for k in (1, 2)]
        assert a == b
        # jitter shrinks the delay by at most 50%
        assert 0.5 <= a[0] <= 1.0

    def test_sleep_hook_receives_delays(self):
        slept = []
        policy = RetryPolicy(
            max_attempts=2, backoff_base_s=1.0, jitter=0.0, sleep=slept.append
        )
        policy.wait(1, np.random.default_rng(0))
        assert slept == [pytest.approx(1.0)]

    def test_from_retries_maps_counter_to_attempts(self):
        assert RetryPolicy.from_retries(0).max_attempts == 1
        assert RetryPolicy.from_retries(2).max_attempts == 3
        with pytest.raises(ValueError, match="measure_retries"):
            RetryPolicy.from_retries(-1)

    def test_delay_never_negative_never_above_cap(self):
        """The queue trusts these bounds for its requeue delays: a
        negative ``not_before`` would reorder claims, an uncapped one
        would park a cell effectively forever."""
        policy = RetryPolicy(
            max_attempts=10, backoff_base_s=0.5, backoff_factor=3.0,
            backoff_max_s=7.0, jitter=1.0,
        )
        rng = np.random.default_rng(42)
        for retry in list(range(1, 50)) + [500, 5000]:
            delay = policy.delay_for(retry, rng)
            assert 0.0 <= delay <= 7.0

    def test_huge_retry_index_saturates_at_cap_not_overflow(self):
        """float-pow overflow (factor ** ~1000s) must saturate at the
        cap, not raise: queue cells carry unbounded attempt counters."""
        policy = RetryPolicy(
            max_attempts=2, backoff_base_s=1.0, backoff_factor=10.0,
            backoff_max_s=30.0, jitter=0.0,
        )
        rng = np.random.default_rng(0)
        assert policy.delay_for(10_000, rng) == pytest.approx(30.0)

    def test_huge_retry_with_zero_base_stays_zero(self):
        policy = RetryPolicy(
            max_attempts=2, backoff_base_s=0.0, backoff_factor=10.0,
            backoff_max_s=30.0, jitter=0.0,
        )
        assert policy.delay_for(10_000, np.random.default_rng(0)) == 0.0

    def test_deterministic_under_fixed_seed(self):
        policy = RetryPolicy(
            max_attempts=5, backoff_base_s=1.0, backoff_factor=2.0,
            backoff_max_s=60.0, jitter=0.5,
        )
        a = [policy.delay_for(k, np.random.default_rng(7)) for k in range(1, 5)]
        b = [policy.delay_for(k, np.random.default_rng(7)) for k in range(1, 5)]
        assert a == b

    def test_zero_base_still_consumes_the_jitter_stream(self):
        """Configurations with and without backoff must stay aligned on
        the shared jitter stream."""
        rng = np.random.default_rng(3)
        RetryPolicy(backoff_base_s=0.0).delay_for(1, rng)
        after_zero = rng.random()
        rng = np.random.default_rng(3)
        RetryPolicy(backoff_base_s=1.0).delay_for(1, rng)
        after_one = rng.random()
        assert after_zero == after_one

    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="backoff_base_s"):
            RetryPolicy(backoff_base_s=-1)
        with pytest.raises(ValueError, match="backoff_factor"):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=2.0)
        with pytest.raises(ValueError, match="retry"):
            RetryPolicy().delay_for(0, np.random.default_rng(0))


class TestCircuitBreaker:
    def test_trips_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3)
        assert not breaker.record_failure("a")
        assert not breaker.record_failure("a")
        assert breaker.record_failure("a")
        assert breaker.is_quarantined("a")
        assert breaker.quarantined == frozenset({"a"})

    def test_success_resets_the_count(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure("a")
        breaker.record_success("a")
        assert not breaker.record_failure("a")
        assert not breaker.is_quarantined("a")

    def test_vms_are_tracked_independently(self):
        breaker = CircuitBreaker(failure_threshold=1)
        breaker.record_failure("a")
        assert breaker.is_quarantined("a")
        assert not breaker.is_quarantined("b")

    def test_reset_clears_everything(self):
        breaker = CircuitBreaker(failure_threshold=1)
        breaker.record_failure("a")
        breaker.reset()
        assert breaker.quarantined == frozenset()

    def test_threshold_validation(self):
        with pytest.raises(ValueError, match="failure_threshold"):
            CircuitBreaker(failure_threshold=0)
