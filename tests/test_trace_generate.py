"""Unit tests for trace generation."""

import numpy as np
import pytest

from repro.trace.generate import DEFAULT_TRACE_SEED, default_trace, generate_trace


class TestDeterminism:
    def test_same_seed_bitwise_identical(self):
        a = generate_trace(seed=123)
        b = generate_trace(seed=123)
        assert np.array_equal(a.times, b.times)
        assert np.array_equal(a.costs, b.costs)
        assert np.array_equal(a.metrics, b.metrics)

    def test_different_seed_differs(self):
        a = generate_trace(seed=1)
        b = generate_trace(seed=2)
        assert not np.array_equal(a.times, b.times)

    def test_default_trace_uses_canonical_seed(self, trace):
        assert trace.seed == DEFAULT_TRACE_SEED

    def test_default_trace_memoised(self):
        assert default_trace() is default_trace()


class TestNoiseControls:
    def test_zero_sigma_gives_model_truth(self, clean_trace, registry):
        from repro.simulator.perfmodel import PerformanceModel

        model = PerformanceModel()
        workload = registry.workloads[17]
        row = clean_trace.row_of(workload)
        for col, vm in enumerate(clean_trace.catalog):
            assert clean_trace.times[row, col] == pytest.approx(
                model.execution_time(vm, workload.profile)
            )

    def test_noisy_trace_close_to_clean(self, trace, clean_trace):
        log_ratio = np.log(trace.times / clean_trace.times)
        assert np.abs(log_ratio).max() < 0.25
        assert np.abs(log_ratio).mean() < 0.05


class TestDatasetShape:
    """The empirical claims of Section II must emerge from the trace."""

    def test_time_spread_reaches_paper_magnitude(self, trace, registry):
        max_spread = max(trace.spread(w, "time") for w in registry)
        assert max_spread > 10, "worst/best time ratio should approach the paper's 20x"

    def test_cost_spread_reaches_paper_magnitude(self, trace, registry):
        max_spread = max(trace.spread(w, "cost") for w in registry)
        assert max_spread > 3.5, "worst/best cost ratio should be several-fold"

    def test_no_single_vm_rules_time(self, trace, registry):
        winners = {trace.best_vm(w, "time").name for w in registry}
        assert len(winners) >= 3

    def test_no_single_vm_rules_cost(self, trace, registry):
        winners = {trace.best_vm(w, "cost").name for w in registry}
        assert len(winners) >= 5

    def test_cost_compresses_the_spread(self, trace, registry):
        """Introducing price compresses performance differences — the
        'level playing field' of Figure 6: the median worst/best ratio is
        much smaller under cost than under time."""
        time_spread = np.median([trace.spread(w, "time") for w in registry])
        cost_spread = np.median([trace.spread(w, "cost") for w in registry])
        assert cost_spread < 0.7 * time_spread

    def test_most_expensive_vm_not_always_fastest(self, trace, registry):
        fastest_fraction = np.mean(
            [trace.best_vm(w, "time").name == "r3.2xlarge" for w in registry]
        )
        assert fastest_fraction < 0.5

    def test_cheapest_vm_not_always_cheapest_to_run(self, trace, registry):
        cheapest_fraction = np.mean(
            [trace.best_vm(w, "cost").name == "c4.large" for w in registry]
        )
        assert cheapest_fraction < 0.5
