"""Unit and property tests for the pluggable VM catalog layer.

The generated catalogs (``aws-large``, ``multicloud``) are pure
arithmetic over (archetype, generation, size) grids — no randomness —
so they must be byte-identical across processes, their prices strictly
positive and monotone in size within a family, and the instance encoder
must handle their >6 family namespaces without touching the paper's
default 18-type encoding.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.cloud.catalog import (
    DEFAULT_CATALOG_NAME,
    Catalog,
    catalog_names,
    get_catalog,
)
from repro.cloud.encoding import InstanceEncoder
from repro.cloud.pricing import default_price_list
from repro.cloud.vmtypes import SIZE_LADDER, default_catalog

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")

GENERATED = ("aws-large", "multicloud")


class TestRegistry:
    def test_names(self):
        assert catalog_names() == ("aws-2017", "aws-large", "multicloud")

    def test_default_is_the_papers_catalog(self):
        catalog = get_catalog(DEFAULT_CATALOG_NAME)
        assert catalog.vms == default_catalog()
        assert catalog.prices is default_price_list()
        assert len(catalog) == 18
        assert catalog.families == ("c3", "c4", "m3", "m4", "r3", "r4")

    def test_expected_sizes(self):
        assert len(get_catalog("aws-large")) == 210
        assert len(get_catalog("multicloud")) == 390

    def test_unknown_name_suggests_alternatives(self):
        with pytest.raises(ValueError, match="aws-large"):
            get_catalog("aws-lrg")
        with pytest.raises(ValueError, match="registered"):
            get_catalog("gcp")

    def test_catalogs_are_memoised(self):
        assert get_catalog("aws-large") is get_catalog("aws-large")

    def test_deterministic_across_processes(self):
        """Two fresh interpreters must generate byte-identical catalogs."""
        script = (
            "from repro.cloud.catalog import get_catalog\n"
            "for name in ('aws-large', 'multicloud'):\n"
            "    c = get_catalog(name)\n"
            "    print(hash((c.name, c.vms, tuple(sorted(c.prices.prices.items())))))\n"
        )
        outputs = [
            subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                check=True,
                env={"PYTHONPATH": REPO_SRC, "PYTHONHASHSEED": "0"},
            ).stdout
            for _ in range(2)
        ]
        assert outputs[0] == outputs[1]
        assert len(outputs[0].splitlines()) == 2


class TestGeneratedCatalogs:
    @pytest.mark.parametrize("name", GENERATED)
    def test_unique_names_and_positive_prices(self, name):
        catalog = get_catalog(name)
        names = [vm.name for vm in catalog]
        assert len(set(names)) == len(names)
        for vm in catalog:
            assert catalog.prices.price_per_hour(vm) > 0.0
            assert vm.vcpus >= 2
            assert vm.ram_gb > 0
            assert vm.ebs_mbps > 0

    @pytest.mark.parametrize("name", GENERATED)
    def test_prices_monotone_in_size_within_family(self, name):
        catalog = get_catalog(name)
        by_family: dict[str, list] = {}
        for vm in catalog:
            by_family.setdefault(vm.family, []).append(vm)
        for family, vms in by_family.items():
            ordered = sorted(vms, key=lambda vm: SIZE_LADDER.index(vm.size))
            prices = [catalog.prices.price_per_hour(vm) for vm in ordered]
            assert prices == sorted(prices), family
            assert all(b > a for a, b in zip(prices, prices[1:])), family

    def test_multicloud_providers(self):
        catalog = get_catalog("multicloud")
        assert catalog.providers == ("aws", "selectel", "timeweb")
        for provider in catalog.providers:
            low, high = catalog.price_range(provider)
            assert 0.0 < low < high

    def test_get_names_the_catalog_in_errors(self):
        with pytest.raises(KeyError, match="multicloud"):
            get_catalog("multicloud").get("sel-c1.lrge")


class TestEncoderAtScale:
    @pytest.mark.parametrize("name", GENERATED)
    def test_encoder_handles_many_families(self, name):
        catalog = get_catalog(name)
        encoder = InstanceEncoder(catalog.vms)
        assert len(encoder.families) > 6
        design = encoder.encode_all()
        assert design.shape[0] == len(catalog)
        # Family codes are 1..n in catalog first-appearance order.
        codes = sorted({int(row[0]) for row in design})
        assert codes == list(range(1, len(encoder.families) + 1))

    def test_default_encoding_is_untouched(self):
        """The paper's 18-type design matrix must be exactly what the
        fixed 6-family encoder always produced."""
        implicit = InstanceEncoder().encode_all()
        explicit = InstanceEncoder(default_catalog()).encode_all()
        np.testing.assert_array_equal(implicit, explicit)
        assert InstanceEncoder().families == ("c3", "c4", "m3", "m4", "r3", "r4")

    def test_unknown_family_is_rejected(self):
        encoder = InstanceEncoder(default_catalog())
        stranger = get_catalog("multicloud").get("sel-c1.large")
        with pytest.raises(ValueError, match="family"):
            encoder.encode(stranger)


class TestCatalogType:
    def test_requires_unique_names(self):
        vm = default_catalog()[0]
        with pytest.raises(ValueError, match="duplicate"):
            Catalog(
                name="dup",
                vms=(vm, vm),
                prices=default_price_list(),
                description="",
            )

    def test_requires_vms(self):
        with pytest.raises(ValueError, match="no VM types"):
            Catalog(
                name="empty", vms=(), prices=default_price_list(), description=""
            )
