"""Unit tests for the ``arrow`` command-line interface."""

import json

import pytest

from repro.cli import main
from repro.parallel.engine import _fork_available


class TestCatalog:
    def test_lists_all_18_vms(self, capsys):
        assert main(["catalog"]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") == 19  # header + 18 rows
        assert "c4.2xlarge" in out
        assert "$/hour" in out


class TestWorkloads:
    def test_lists_all_by_default(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") == 107

    def test_framework_filter(self, capsys):
        assert main(["workloads", "--framework", "Hadoop 2.7"]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") == 21  # 7 apps x 3 sizes
        assert "Spark" not in out

    def test_combined_filters(self, capsys):
        assert main(
            ["workloads", "--application", "als", "--size", "medium"]
        ) == 0
        out = capsys.readouterr().out
        assert out.count("\n") == 2  # Spark 2.1 and Spark 1.5

    def test_invalid_framework_is_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["workloads", "--framework", "Flink"])
        assert excinfo.value.code == 2


class TestTrace:
    def test_generate_and_stats_roundtrip(self, tmp_path, capsys):
        out_path = tmp_path / "trace.json"
        assert main(["trace", "generate", "--seed", "7", "--out", str(out_path)]) == 0
        assert out_path.exists()
        capsys.readouterr()
        assert main(["trace", "stats", "--path", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "worst/best spread" in out
        assert "optimal-VM histogram" in out


class TestSearch:
    def test_single_run_prints_steps(self, capsys):
        assert main(["search", "kmeans/Spark 2.1/small", "--method", "random"]) == 0
        out = capsys.readouterr().out
        assert "stopped by exhausted after 18 measurements" in out
        assert "best" in out

    def test_unknown_workload_fails_cleanly(self, capsys):
        assert main(["search", "nope/Spark 2.1/small"]) == 1
        assert "unknown workload" in capsys.readouterr().err

    def test_repeats_prints_summary(self, capsys):
        assert main(
            [
                "search", "kmeans/Spark 2.1/small",
                "--method", "random", "--repeats", "3",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "3 repeats" in out
        assert "median" in out

    def test_stopping_rule_applies(self, capsys):
        assert main(
            [
                "search", "kmeans/Spark 2.1/small",
                "--method", "augmented", "--stop", "delta",
                "--stop-value", "1.1",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "stopped by criterion" in out

    def test_workers_flag_matches_serial_summary(self, capsys):
        argv = [
            "search", "kmeans/Spark 2.1/small",
            "--method", "random", "--repeats", "4",
        ]
        assert main(argv + ["--workers", "1"]) == 0
        serial_out = capsys.readouterr().out
        assert main(argv + ["--workers", "3"]) == 0
        parallel_out = capsys.readouterr().out
        assert serial_out == parallel_out
        assert "4 repeats" in serial_out

    def test_refit_fraction_flag(self, capsys):
        assert main(
            [
                "search", "kmeans/Spark 2.1/small",
                "--method", "augmented", "--refit-fraction", "0.25",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "stopped by" in out

    def test_bad_refit_fraction_fails_cleanly(self, capsys):
        assert main(
            [
                "search", "kmeans/Spark 2.1/small",
                "--method", "augmented", "--refit-fraction", "0",
            ]
        ) == 1
        assert "refit_fraction" in capsys.readouterr().err


class TestSearchFaults:
    def test_fault_plan_with_outage_reports_quarantine(self, capsys):
        assert main(
            [
                "search", "kmeans/Spark 2.1/small",
                "--method", "exhaustive",
                "--fault-plan", "outage:vm=c3.large",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "stopped by exhausted after 17 measurements" in out
        assert "quarantined: c3.large" in out
        assert "failed attempts: 3" in out

    def test_transient_faults_with_retries_complete(self, capsys):
        assert main(
            [
                "search", "kmeans/Spark 2.1/small",
                "--method", "random",
                "--fault-plan", "transient:every=3",
                "--measure-retries", "2",
                "--retry-backoff", "1.0",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "stopped by exhausted after 18 measurements" in out
        assert "retry wait" in out

    def test_fault_runs_are_reproducible(self, capsys):
        argv = [
            "search", "kmeans/Spark 2.1/small",
            "--method", "random",
            "--fault-plan", "transient:rate=0.3+straggler:rate=0.1,slowdown=3",
            "--fault-seed", "9",
            "--measure-retries", "3",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_repeats_report_charged_cost_under_faults(self, capsys):
        assert main(
            [
                "search", "kmeans/Spark 2.1/small",
                "--method", "random", "--repeats", "3",
                "--fault-plan", "transient:every=4",
                "--measure-retries", "2",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "charged cost (failures included)" in out

    def test_bad_fault_plan_fails_cleanly(self, capsys):
        assert main(
            [
                "search", "kmeans/Spark 2.1/small",
                "--fault-plan", "meteor:rate=1.0",
            ]
        ) == 1
        assert "unknown fault rule" in capsys.readouterr().err

    def test_negative_retries_fail_cleanly(self, capsys):
        assert main(
            [
                "search", "kmeans/Spark 2.1/small",
                "--measure-retries", "-2",
            ]
        ) == 1
        assert "error" in capsys.readouterr().err


class TestProfile:
    def test_profile_prints_chart_and_summary(self, capsys):
        assert main(["profile", "scan/Hadoop 2.7/small", "c4.large"]) == 0
        out = capsys.readouterr().out
        assert "simulated" in out
        assert "iowait" in out
        assert "summary:" in out

    def test_paging_flagged(self, capsys):
        assert main(["profile", "lr/Spark 1.5/medium", "c4.large"]) == 0
        assert "paging yes" in capsys.readouterr().out

    def test_unknown_vm_fails_cleanly(self, capsys):
        assert main(["profile", "scan/Hadoop 2.7/small", "c9.nano"]) == 1
        assert "error" in capsys.readouterr().err


class TestFigure:
    def test_missing_figure_fails_cleanly(self, tmp_path, capsys):
        assert main(["figure", "fig1", "--dir", str(tmp_path)]) == 1
        assert "build_cache" in capsys.readouterr().err

    def test_renders_fig1_curve(self, tmp_path, capsys):
        payload = {
            "curve": [i / 18 for i in range(1, 19)],
            "solved_at_6": 0.33,
            "solved_at_12": 0.66,
            "regions": {"Region I": 50, "Region II": 40, "Region III": 17},
        }
        (tmp_path / "fig1.json").write_text(json.dumps(payload))
        assert main(["figure", "fig1", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "fraction of workloads solved" in out
        assert "regions" in out

    def test_renders_fig9_multiseries(self, tmp_path, capsys):
        payload = {
            "curves": {"naive": [0.1, 0.5, 1.0], "augmented": [0.2, 0.7, 1.0]},
            "solved_at": {},
        }
        (tmp_path / "fig9a.json").write_text(json.dumps(payload))
        assert main(["figure", "fig9a", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "* naive" in out
        assert "o augmented" in out

    def test_unknown_figure_is_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["figure", "fig99"])
        assert excinfo.value.code == 2

    def test_generic_figure_dumps_json(self, tmp_path, capsys):
        (tmp_path / "fig12.json").write_text(json.dumps({"counts": {"win": 40}}))
        assert main(["figure", "fig12", "--dir", str(tmp_path)]) == 0
        assert '"win": 40' in capsys.readouterr().out


class TestExperiments:
    def test_lists_all_16_experiments(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") == 16
        assert "fig13" in out


class TestQueueCommands:
    WORKLOAD = "kmeans/Spark 2.1/small"

    def test_search_queue_requires_cache_dir(self, capsys):
        assert main(
            ["search", self.WORKLOAD, "--method", "random", "--executor", "queue"]
        ) == 1
        assert "--cache-dir" in capsys.readouterr().err

    def test_queue_status_missing_file_fails_cleanly(self, tmp_path, capsys):
        assert main(
            ["queue-status", "--queue-db", str(tmp_path / "absent.queue")]
        ) == 1
        assert "no queue database" in capsys.readouterr().err

    def test_queue_worker_missing_db_fails_cleanly(self, tmp_path, capsys):
        assert main(
            ["queue-worker", "--queue-db", str(tmp_path / "absent.queue")]
        ) == 1
        assert "no queue database" in capsys.readouterr().err

    @pytest.mark.skipif(
        not _fork_available(), reason="requires fork start method"
    )
    def test_queue_campaign_matches_serial_and_serves_tools(self, tmp_path, capsys):
        argv = [
            "search", self.WORKLOAD, "--method", "random", "--repeats", "4",
        ]
        assert main(argv + ["--cache-dir", str(tmp_path / "serial")]) == 0
        serial_out = capsys.readouterr().out
        assert main(
            argv + [
                "--cache-dir", str(tmp_path / "queued"),
                "--executor", "queue", "--queue-workers", "1",
            ]
        ) == 0
        queued_out = capsys.readouterr().out
        assert serial_out == queued_out

        [serial_cache] = list((tmp_path / "serial").glob("*.json"))
        [queued_cache] = list((tmp_path / "queued").glob("*.json"))
        assert serial_cache.read_bytes() == queued_cache.read_bytes()

        [queue_db] = list((tmp_path / "queued").glob("*.queue"))
        assert main(["queue-status", "--queue-db", str(queue_db)]) == 0
        status_out = capsys.readouterr().out
        assert "done      4" in status_out
        assert "attempts histogram" in status_out

        # A worker with matching flags joins a drained queue and exits.
        assert main(
            ["queue-worker", "--queue-db", str(queue_db), "--method", "random"]
        ) == 0
        assert "processed 0 cell(s)" in capsys.readouterr().out

    @pytest.mark.skipif(
        not _fork_available(), reason="requires fork start method"
    )
    def test_queue_status_reports_pricing_and_partial_credit(
        self, tmp_path, capsys
    ):
        assert main([
            "search", self.WORKLOAD, "--method", "random", "--repeats", "2",
            "--pricing", "spot", "--spot-seed", "5",
            "--fault-plan", "spot:market=5,base=0.25,slope=0.5",
            "--measure-retries", "5",
            "--cache-dir", str(tmp_path / "spot"),
            "--executor", "queue", "--queue-workers", "1",
        ]) == 0
        capsys.readouterr()
        [queue_db] = list((tmp_path / "spot").glob("*.queue"))
        assert main(["queue-status", "--queue-db", str(queue_db)]) == 0
        out = capsys.readouterr().out
        assert "pricing spot" in out
        assert "cumulative partial credit" in out

    def test_queue_status_on_demand_shows_no_credit_line(self, tmp_path, capsys):
        from repro.parallel.queue import WorkQueue

        queue_db = tmp_path / "plain.queue"
        with WorkQueue(queue_db, "campaign__time") as queue:
            queue.enqueue([((self.WORKLOAD, 0), 5)])
        assert main(["queue-status", "--queue-db", str(queue_db)]) == 0
        out = capsys.readouterr().out
        assert "pricing on-demand" in out
        assert "cumulative partial credit" not in out

    def test_queue_worker_refuses_foreign_grid_key(self, tmp_path, capsys):
        from repro.parallel.queue import WorkQueue

        queue_db = tmp_path / "foreign.queue"
        with WorkQueue(queue_db, "some-other-campaign__time") as queue:
            queue.enqueue([((self.WORKLOAD, 0), 5)])
        assert main(
            ["queue-worker", "--queue-db", str(queue_db), "--method", "random"]
        ) == 1
        assert "belongs to grid" in capsys.readouterr().err
        # The explicit override serves the queue anyway.
        assert main(
            [
                "queue-worker", "--queue-db", str(queue_db),
                "--method", "random", "--allow-key-mismatch",
            ]
        ) == 0
        assert "processed 1 cell(s)" in capsys.readouterr().out


class TestSpotGridKey:
    """Spot flags join the search cache key only when pricing is spot."""

    WORKLOAD = "kmeans/Spark 2.1/small"

    def _key(self, *extra):
        from repro.cli import _search_grid_key, build_parser

        args = build_parser().parse_args(
            ["search", self.WORKLOAD, "--method", "random", *extra]
        )
        return _search_grid_key(args)

    def test_on_demand_key_ignores_spot_flags(self):
        # The spot knobs are inert while pricing stays on-demand, so
        # they must not perturb (and so invalidate) existing caches.
        assert self._key() == self._key(
            "--spot-seed", "99", "--spot-fallback-after", "7",
            "--spot-resume-credit", "0.5",
        )

    def test_spot_pricing_changes_the_key(self):
        assert self._key("--pricing", "spot") != self._key()

    def test_spot_knobs_change_the_spot_key(self):
        base = self._key("--pricing", "spot")
        assert self._key("--pricing", "spot", "--spot-seed", "9") != base
        assert self._key("--pricing", "spot", "--spot-fallback-after", "7") != base
        assert self._key("--pricing", "spot", "--spot-resume-credit", "0.5") != base
