"""Integration tests for the canonical experiment functions.

These run the real figure pipelines on reduced workload subsets and tiny
repeat counts — asserting structure and invariants, not the paper-scale
numbers (the benchmark suite covers those).
"""

import pytest

from repro.analysis import experiments as exp
from repro.analysis.runner import ExperimentRunner
from repro.core.objectives import Objective

#: A small but diverse slice of the registry for grid experiments.
SUBSET = None  # initialised in fixture


@pytest.fixture(scope="module")
def runner(trace, tmp_path_factory):
    return ExperimentRunner(trace=trace, cache_dir=tmp_path_factory.mktemp("cache"))


@pytest.fixture(scope="module")
def subset():
    return exp.all_workload_ids()[::9]  # 12 workloads


class TestDatasetExperiments:
    def test_table1(self):
        result = exp.table1_registry()
        assert result["n_workloads"] == 107
        assert result["n_applications"] == 30
        assert len(result["frameworks"]) == 3
        assert sum(len(v) for v in result["applications_by_category"].values()) == 30

    def test_fig3_spreads(self, runner):
        result = exp.fig3_worst_best_spread(runner)
        assert result["max_time_spread"] > result["median_time_spread"] > 1.0
        assert result["max_cost_spread"] > result["median_cost_spread"] > 1.0
        assert result["max_time_workload"] in {w.workload_id for w in runner.trace.registry}

    def test_fig4_extremes(self, runner):
        result = exp.fig4_extreme_vms(runner)
        for fraction in result["expensive_optimal_time_fraction"].values():
            assert 0.0 <= fraction <= 1.0
        assert result["any_expensive_time_fraction"] <= 1.0
        # No extreme VM (nor all three together) wins everything.
        assert result["any_cheap_cost_fraction"] < 1.0

    def test_fig5_input_size_moves_optima(self, runner):
        result = exp.fig5_input_size(runner)
        assert result["n_app_framework_pairs"] == 38
        assert result["changed_best_cost"] > 10
        assert result["examples"]

    def test_fig6_cost_levelling(self, runner):
        result = exp.fig6_cost_levelling(runner)
        assert len(result["rows"]) == 18
        assert result["cost_spread"] < result["time_spread"]

    def test_fig8_memory_bottleneck(self, runner):
        result = exp.fig8_memory_bottleneck(runner)
        rows = result["rows"]
        assert len(rows) == 18
        slowest, fastest = rows[0], rows[-1]
        assert slowest["normalised_time"] > 3.0
        assert slowest["mem_commit_pct"] > 100.0
        assert fastest["mem_commit_pct"] < 100.0


class TestSearchExperiments:
    def test_fig1_structure(self, runner, subset):
        result = exp.fig1_naive_cdf(runner, repeats=2, workload_ids=subset)
        assert len(result["curve"]) == 18
        assert result["curve"][-1] == 1.0  # full sweeps always find the optimum
        assert sum(result["regions"].values()) == len(subset)

    def test_fig2_trace_shape(self, runner):
        result = exp.fig2_als_trace(runner, repeats=3)
        assert len(result["median_curve"]) == 18
        assert result["median_curve"][-1] == pytest.approx(1.0)
        assert all(a >= b for a, b in zip(result["median_curve"], result["median_curve"][1:]))

    def test_fig7_kernels(self, runner):
        result = exp.fig7_kernel_fragility(runner, repeats=2)
        assert len(result["cases"]) == 2
        for case in result["cases"]:
            assert set(case["median_cost_by_kernel"]) == {
                "rbf", "matern12", "matern32", "matern52",
            }
            assert case["best_kernel"] != case["worst_kernel"]

    def test_fig9_structure(self, runner, subset):
        result = exp.fig9_cdf(
            runner, Objective.TIME, repeats=2, include_hybrid=False, workload_ids=subset
        )
        assert set(result["curves"]) == {"naive", "augmented"}
        for curve in result["curves"].values():
            assert len(curve) == 18
            assert curve[-1] == 1.0

    def test_fig10_structure(self, runner):
        result = exp.fig10_example_traces(runner, repeats=2)
        assert len(result["cases"]) == 3
        for case in result["cases"]:
            assert set(case["methods"]) == {"naive", "augmented"}
            for method in case["methods"].values():
                assert len(method["median_curve"]) == 18
                assert method["median_cost_to_optimum"] <= 18

    def test_sec3c_structure(self, runner, subset):
        result = exp.sec3c_initial_points(runner, repeats=2, workload_ids=subset)
        assert 0.0 <= result["bad_unsolved_at_6"] <= 1.0
        assert 0.0 <= result["good_unsolved_at_6"] <= 1.0

    def test_fig12_structure(self, runner, subset):
        result = exp.fig12_win_loss(runner, repeats=2, workload_ids=subset)
        assert sum(result["counts"].values()) == len(subset)
        assert len(result["comparisons"]) == len(subset)
        for comparison in result["comparisons"]:
            assert comparison["outcome"] in {"win", "same", "draw", "loss"}

    def test_fig13_structure(self, runner, subset):
        result = exp.fig13_timecost_product(runner, repeats=2, workload_ids=subset)
        assert 0.0 <= result["naive_long_search_fraction"] <= 1.0
        assert result["augmented_max_search_cost"] <= 18

    def test_fig11_structure(self, runner, subset):
        result = exp.fig11_stopping_tradeoff(
            runner, repeats=2, workload_ids=subset, region_repeats=2
        )
        assert set(result["naive_ei"]) == {str(v) for v in exp.EI_FRACTIONS}
        assert set(result["augmented_delta"]) == {str(v) for v in exp.DELTA_THRESHOLDS}
        for per_region in result["augmented_delta"].values():
            for point in per_region.values():
                assert point["mean_search_cost"] >= 3
                assert point["mean_normalised_cost"] >= 1.0 - 1e-9

    def test_stopping_tradeoff_direction(self, runner, subset):
        """Within fig11, a patient threshold (1.3) must search at least as
        long as an aggressive one (0.9) on the same workloads."""
        result = exp.fig11_stopping_tradeoff(
            runner, repeats=2, workload_ids=subset, region_repeats=2
        )
        for region in result["augmented_delta"]["0.9"]:
            aggressive = result["augmented_delta"]["0.9"][region]["mean_search_cost"]
            patient = result["augmented_delta"]["1.3"][region]["mean_search_cost"]
            assert patient >= aggressive - 1e-9
