"""Unit tests for baseline strategies."""

import pytest

from repro.core.baselines import ExhaustiveSearch, RandomSearch, SingleVMRule


@pytest.fixture()
def environment(trace):
    return trace.environment("kmeans/Spark 2.1/small")


class TestRandomSearch:
    def test_measures_everything_eventually(self, environment):
        result = RandomSearch(environment, seed=0).run()
        assert result.search_cost == 18
        assert len(set(result.measured_vm_names)) == 18

    def test_order_varies_with_seed(self, trace):
        orders = {
            RandomSearch(trace.environment("kmeans/Spark 2.1/small"), seed=s).run().measured_vm_names
            for s in range(5)
        }
        assert len(orders) > 1

    def test_always_finds_the_optimum_at_full_budget(self, trace):
        optimum = trace.objective_values("kmeans/Spark 2.1/small", "time").min()
        result = RandomSearch(trace.environment("kmeans/Spark 2.1/small"), seed=1).run()
        assert result.best_value == pytest.approx(optimum)


class TestExhaustiveSearch:
    def test_measures_in_catalog_order(self, environment):
        result = ExhaustiveSearch(environment, seed=0).run()
        expected = tuple(vm.name for vm in environment.catalog)
        assert result.measured_vm_names == expected

    def test_cost_is_always_the_full_catalog(self, environment):
        assert ExhaustiveSearch(environment, seed=0).run().search_cost == 18


class TestSingleVMRule:
    def test_measures_exactly_the_prescribed_vm(self, environment):
        result = SingleVMRule(environment, "c4.2xlarge", seed=0).run()
        assert result.search_cost == 1
        assert result.measured_vm_names == ("c4.2xlarge",)
        assert result.stopped_by == "criterion"

    def test_unknown_vm_rejected(self, environment):
        with pytest.raises(KeyError):
            SingleVMRule(environment, "c9.titan", seed=0)

    def test_rule_of_thumb_is_suboptimal_for_some_workload(self, trace):
        """Section II-C: no fixed VM rule is optimal everywhere."""
        suboptimal = 0
        for workload in list(trace.registry)[::10]:
            result = SingleVMRule(trace.environment(workload), "c4.2xlarge").run()
            optimum = trace.objective_values(workload, "time").min()
            if result.best_value > optimum * 1.01:
                suboptimal += 1
        assert suboptimal > 0
