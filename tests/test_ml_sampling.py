"""Unit and property tests for quasi-random sampling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.sampling import (
    MAX_SOBOL_DIM,
    SobolSequence,
    latin_hypercube,
    quasi_random_distinct,
)


class TestSobol:
    def test_first_dimension_is_van_der_corput(self):
        points = SobolSequence(1).generate(8).ravel()
        assert points.tolist() == [0.0, 0.5, 0.75, 0.25, 0.375, 0.875, 0.625, 0.125]

    def test_points_in_unit_cube(self):
        points = SobolSequence(4).generate(256)
        assert points.min() >= 0.0
        assert points.max() < 1.0

    def test_dimensions_are_distinct_sequences(self):
        points = SobolSequence(3).generate(64)
        assert not np.array_equal(points[:, 0], points[:, 1])
        assert not np.array_equal(points[:, 1], points[:, 2])

    def test_balance_in_every_dimension(self):
        """A power-of-two prefix of a Sobol sequence puts exactly half the
        points in each half of every axis."""
        points = SobolSequence(5).generate(64)
        for dim in range(5):
            assert (points[:, dim] < 0.5).sum() == 32

    def test_low_discrepancy_beats_iid_grid_coverage(self):
        n = 256
        sobol = SobolSequence(2).generate(n)
        rng = np.random.default_rng(0)
        iid = rng.uniform(size=(n, 2))

        def worst_cell_deviation(pts):
            counts, _, _ = np.histogram2d(pts[:, 0], pts[:, 1], bins=4, range=[[0, 1], [0, 1]])
            return np.abs(counts - n / 16).max()

        assert worst_cell_deviation(sobol) <= worst_cell_deviation(iid)

    def test_generate_is_stateful_continuation(self):
        seq = SobolSequence(2)
        first = seq.generate(8)
        second = seq.generate(8)
        fresh = SobolSequence(2).generate(16)
        assert np.allclose(np.vstack([first, second]), fresh)

    def test_dim_bounds_enforced(self):
        with pytest.raises(ValueError):
            SobolSequence(0)
        with pytest.raises(ValueError):
            SobolSequence(MAX_SOBOL_DIM + 1)
        SobolSequence(MAX_SOBOL_DIM).generate(4)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            SobolSequence(1).generate(-1)

    def test_no_duplicate_points_in_prefix(self):
        points = SobolSequence(3).generate(128)
        assert len({tuple(p) for p in points}) == 128


class TestLatinHypercube:
    def test_one_point_per_stratum(self):
        n = 20
        points = latin_hypercube(n, 3, rng=0)
        for dim in range(3):
            strata = np.floor(points[:, dim] * n).astype(int)
            assert sorted(strata.tolist()) == list(range(n))

    def test_deterministic_given_seed(self):
        assert np.array_equal(latin_hypercube(10, 2, rng=5), latin_hypercube(10, 2, rng=5))

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            latin_hypercube(0, 2)
        with pytest.raises(ValueError):
            latin_hypercube(2, 0)


class TestQuasiRandomDistinct:
    def test_picks_are_unique_indices(self):
        rng = np.random.default_rng(0)
        candidates = rng.normal(size=(18, 4))
        picks = quasi_random_distinct(candidates, 5, rng=1)
        assert len(set(picks)) == 5
        assert all(0 <= p < 18 for p in picks)

    def test_maximin_spreads_over_clusters(self):
        """Two clusters far apart: 2 picks must take one from each."""
        cluster_a = np.zeros((5, 2))
        cluster_b = np.full((5, 2), 100.0)
        candidates = np.vstack([cluster_a, cluster_b])
        for seed in range(10):
            picks = quasi_random_distinct(candidates, 2, rng=seed)
            sides = {p // 5 for p in picks}
            assert sides == {0, 1}

    def test_full_selection_is_permutation(self):
        candidates = np.random.default_rng(2).normal(size=(7, 3))
        picks = quasi_random_distinct(candidates, 7, rng=0)
        assert sorted(picks) == list(range(7))

    def test_n_out_of_range_rejected(self):
        candidates = np.zeros((4, 2))
        with pytest.raises(ValueError):
            quasi_random_distinct(candidates, 0)
        with pytest.raises(ValueError):
            quasi_random_distinct(candidates, 5)

    def test_first_pick_varies_with_seed(self):
        candidates = np.random.default_rng(3).normal(size=(18, 4))
        firsts = {quasi_random_distinct(candidates, 1, rng=s)[0] for s in range(40)}
        assert len(firsts) > 5

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(1, 10))
    def test_property_unique_and_in_range(self, seed, n):
        candidates = np.random.default_rng(0).normal(size=(10, 3))
        picks = quasi_random_distinct(candidates, n, rng=seed)
        assert len(picks) == n
        assert len(set(picks)) == n
