"""Cell executors: protocol conformance, crash containment, cancellation."""

from __future__ import annotations

import os
import time

import pytest

from repro.core.objectives import Objective
from repro.core.result import SearchResult, SearchStep
from repro.parallel.executors import (
    CellExecutor,
    CellOutcome,
    ForkPoolExecutor,
    SerialExecutor,
)
from repro.parallel.engine import _fork_available


def _result(tag: str) -> SearchResult:
    return SearchResult(
        optimizer="scripted",
        objective=Objective.TIME,
        workload_id=tag,
        steps=(SearchStep(step=1, vm_name="vm", objective_value=1.0, best_value=1.0),),
        stopped_by="budget",
    )


def scripted_cell(cell):
    """Module-level so forked workers can run it; behaviour rides in the cell."""
    action, index = cell
    if action == "ok":
        return _result(f"ok-{index}")
    if action == "slow":
        time.sleep(0.2)
        return _result(f"slow-{index}")
    if action == "hang":
        time.sleep(60.0)
        return _result(f"hang-{index}")
    if action == "fail":
        raise RuntimeError(f"scripted failure {index}")
    if action == "exit":
        os._exit(13)
    raise AssertionError(f"unknown action {action}")


def drain(executor, n, deadline_s=30.0):
    """Poll until ``n`` outcomes arrived (or the deadline passed)."""
    outcomes: list[CellOutcome] = []
    deadline = time.monotonic() + deadline_s
    while len(outcomes) < n and time.monotonic() < deadline:
        outcomes.extend(executor.poll(0.2))
    return outcomes


class TestSerialExecutor:
    def test_runs_cells_in_submission_order(self):
        executor = SerialExecutor(scripted_cell)
        for index in range(3):
            executor.submit(("ok", index))
        outcomes = []
        while batch := executor.poll():
            outcomes.extend(batch)
        assert [o.cell for o in outcomes] == [("ok", 0), ("ok", 1), ("ok", 2)]
        assert all(o.ok for o in outcomes)

    def test_poll_empty_backlog_returns_nothing(self):
        assert SerialExecutor(scripted_cell).poll() == []

    def test_exceptions_propagate(self):
        executor = SerialExecutor(scripted_cell)
        executor.submit(("fail", 0))
        with pytest.raises(RuntimeError, match="scripted failure"):
            executor.poll()

    def test_cancel_withdraws_queued_cell(self):
        executor = SerialExecutor(scripted_cell)
        executor.submit(("ok", 0))
        executor.submit(("ok", 1))
        assert executor.cancel(("ok", 0))
        assert not executor.cancel(("ok", 0))
        assert [o.cell for o in executor.poll()] == [("ok", 1)]

    def test_front_submission_jumps_the_backlog(self):
        executor = SerialExecutor(scripted_cell)
        executor.submit(("ok", 0))
        executor.submit(("ok", 1))
        executor.submit(("ok", 2), front=True)
        outcomes = []
        while batch := executor.poll():
            outcomes.extend(batch)
        assert [o.cell for o in outcomes] == [("ok", 2), ("ok", 0), ("ok", 1)]

    def test_protocol_conformance(self):
        assert isinstance(SerialExecutor(scripted_cell), CellExecutor)
        assert not SerialExecutor.supports_cancel


@pytest.mark.skipif(not _fork_available(), reason="requires fork start method")
class TestForkPoolExecutor:
    def test_protocol_conformance(self):
        executor = ForkPoolExecutor(workers=1, run_cell=scripted_cell)
        try:
            assert isinstance(executor, CellExecutor)
            assert ForkPoolExecutor.supports_cancel
        finally:
            executor.shutdown()

    def test_completes_all_cells(self):
        executor = ForkPoolExecutor(workers=2, run_cell=scripted_cell)
        try:
            cells = [("ok", index) for index in range(5)]
            for cell in cells:
                executor.submit(cell)
            outcomes = drain(executor, len(cells))
            assert sorted(o.cell for o in outcomes) == cells
            assert all(o.ok for o in outcomes)
        finally:
            executor.shutdown()

    def test_application_error_is_an_outcome_not_a_crash(self):
        executor = ForkPoolExecutor(workers=1, run_cell=scripted_cell)
        try:
            executor.submit(("fail", 7))
            [outcome] = drain(executor, 1)
            assert outcome.cell == ("fail", 7)
            assert not outcome.ok and not outcome.crashed
            assert "scripted failure 7" in outcome.error
            # The worker survived the error and takes the next cell.
            executor.submit(("ok", 1))
            [outcome] = drain(executor, 1)
            assert outcome.ok
        finally:
            executor.shutdown()

    def test_worker_death_is_contained_to_its_cell(self):
        executor = ForkPoolExecutor(workers=2, run_cell=scripted_cell)
        try:
            executor.submit(("exit", 0))
            for index in range(3):
                executor.submit(("ok", index))
            outcomes = drain(executor, 4)
            crashed = [o for o in outcomes if o.crashed]
            finished = [o for o in outcomes if o.ok]
            assert [o.cell for o in crashed] == [("exit", 0)]
            assert sorted(o.cell for o in finished) == [("ok", i) for i in range(3)]
        finally:
            executor.shutdown()

    def test_cancel_kills_only_the_straggler(self):
        executor = ForkPoolExecutor(workers=2, run_cell=scripted_cell)
        try:
            executor.submit(("hang", 0))
            executor.submit(("slow", 1))
            deadline = time.monotonic() + 10.0
            while executor.started_at(("hang", 0)) is None:
                executor.poll(0.05)
                assert time.monotonic() < deadline
            assert executor.cancel(("hang", 0))
            # The sibling's result still arrives; nothing for the
            # cancelled cell ever does.
            outcomes = drain(executor, 1)
            assert [o.cell for o in outcomes] == [("slow", 1)]
            assert executor.started_at(("hang", 0)) is None
        finally:
            executor.shutdown()

    def test_cancel_withdraws_backlog_without_killing(self):
        executor = ForkPoolExecutor(workers=1, run_cell=scripted_cell)
        try:
            executor.submit(("slow", 0))
            executor.submit(("ok", 99))  # queued behind the only worker
            assert executor.cancel(("ok", 99))
            outcomes = drain(executor, 1)
            assert [o.cell for o in outcomes] == [("slow", 0)]
        finally:
            executor.shutdown()

    def test_front_submission_jumps_the_backlog(self):
        executor = ForkPoolExecutor(workers=1, run_cell=scripted_cell)
        try:
            executor.submit(("slow", 0))  # occupies the only worker
            executor.submit(("ok", 1))
            executor.submit(("ok", 2), front=True)
            outcomes = drain(executor, 3)
            assert [o.cell for o in outcomes] == [
                ("slow", 0),
                ("ok", 2),
                ("ok", 1),
            ]
        finally:
            executor.shutdown()

    def test_capacity_heals_after_crash(self):
        executor = ForkPoolExecutor(workers=1, run_cell=scripted_cell)
        try:
            executor.submit(("exit", 0))
            [outcome] = drain(executor, 1)
            assert outcome.crashed
            # Resubmitting forks a fresh worker: the pool self-heals.
            executor.submit(("ok", 1))
            [outcome] = drain(executor, 1)
            assert outcome.ok and outcome.cell == ("ok", 1)
        finally:
            executor.shutdown()

    def test_shutdown_is_idempotent(self):
        executor = ForkPoolExecutor(workers=2, run_cell=scripted_cell)
        executor.submit(("slow", 0))
        executor.shutdown()
        executor.shutdown()
        assert executor.poll(0) == []

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError, match="workers"):
            ForkPoolExecutor(workers=0, run_cell=scripted_cell)
