"""Unit tests for the benchmark trace container and replay environment."""

import numpy as np
import pytest

from repro.simulator.cluster import MeasurementEnvironment
from repro.trace.dataset import BenchmarkTrace


class TestShapeAndValidation:
    def test_canonical_trace_shape(self, trace):
        assert trace.times.shape == (107, 18)
        assert trace.costs.shape == (107, 18)
        assert trace.metrics.shape == (107, 18, 6)

    def test_all_values_positive(self, trace):
        assert np.all(trace.times > 0)
        assert np.all(trace.costs > 0)

    def test_mismatched_shapes_rejected(self, trace):
        with pytest.raises(ValueError, match="times has shape"):
            BenchmarkTrace(
                registry=trace.registry,
                catalog=trace.catalog,
                times=trace.times[:, :5],
                costs=trace.costs,
                metrics=trace.metrics,
                seed=0,
            )

    def test_non_positive_values_rejected(self, trace):
        bad_times = trace.times.copy()
        bad_times[0, 0] = 0.0
        with pytest.raises(ValueError, match="non-positive"):
            BenchmarkTrace(
                registry=trace.registry,
                catalog=trace.catalog,
                times=bad_times,
                costs=trace.costs,
                metrics=trace.metrics,
                seed=0,
            )


class TestLookup:
    def test_row_and_column_indexing(self, trace):
        workload = trace.registry.workloads[13]
        assert trace.row_of(workload) == 13
        assert trace.row_of(workload.workload_id) == 13
        vm = trace.catalog[7]
        assert trace.column_of(vm) == 7
        assert trace.column_of(vm.name) == 7

    def test_unknown_workload_raises(self, trace):
        with pytest.raises(KeyError, match="not in this trace"):
            trace.row_of("nope/Spark 9/huge")

    def test_unknown_vm_raises(self, trace):
        with pytest.raises(KeyError, match="not in this trace"):
            trace.column_of("z9.nano")

    def test_times_for_returns_copy(self, trace):
        workload = trace.registry.workloads[0]
        row = trace.times_for(workload)
        row[0] = -1
        assert trace.times_for(workload)[0] > 0

    def test_measurement_assembles_recorded_values(self, trace):
        workload = trace.registry.workloads[3]
        vm = trace.catalog[5]
        m = trace.measurement(workload, vm)
        assert m.execution_time_s == trace.times[3, 5]
        assert m.cost_usd == trace.costs[3, 5]
        assert np.array_equal(m.metrics.to_vector(), trace.metrics[3, 5])


class TestObjectives:
    def test_product_is_time_times_cost(self, trace):
        workload = trace.registry.workloads[0]
        product = trace.objective_values(workload, "product")
        assert np.allclose(product, trace.times[0] * trace.costs[0])

    def test_unknown_objective_rejected(self, trace):
        with pytest.raises(ValueError, match="unknown objective"):
            trace.objective_values(trace.registry.workloads[0], "latency")

    def test_normalised_minimum_is_one(self, trace, registry):
        for workload in list(registry)[::20]:
            for objective in ("time", "cost", "product"):
                norm = trace.normalised(workload, objective)
                assert norm.min() == pytest.approx(1.0)
                assert np.all(norm >= 1.0)

    def test_best_vm_attains_minimum(self, trace):
        workload = trace.registry.workloads[42]
        best = trace.best_vm(workload, "cost")
        col = trace.column_of(best)
        assert trace.costs[42, col] == trace.costs[42].min()

    def test_spread_is_max_over_min(self, trace):
        workload = trace.registry.workloads[10]
        times = trace.times[10]
        assert trace.spread(workload, "time") == pytest.approx(times.max() / times.min())


class TestTraceEnvironment:
    def test_conforms_to_protocol(self, trace):
        env = trace.environment(trace.registry.workloads[0])
        assert isinstance(env, MeasurementEnvironment)

    def test_environment_accepts_id_or_workload(self, trace):
        workload = trace.registry.workloads[1]
        env_a = trace.environment(workload)
        env_b = trace.environment(workload.workload_id)
        assert env_a.workload == env_b.workload

    def test_replay_returns_recorded_values(self, trace):
        workload = trace.registry.workloads[2]
        env = trace.environment(workload)
        vm = trace.catalog[4]
        m = env.measure(vm)
        assert m.execution_time_s == trace.times[2, 4]

    def test_replay_is_deterministic_across_calls(self, trace):
        env = trace.environment(trace.registry.workloads[0])
        vm = trace.catalog[0]
        assert env.measure(vm) == env.measure(vm)

    def test_every_measurement_is_charged(self, trace):
        env = trace.environment(trace.registry.workloads[0])
        for i in range(5):
            env.measure(trace.catalog[i])
        assert env.measurement_count == 5
        env.reset()
        assert env.measurement_count == 0
