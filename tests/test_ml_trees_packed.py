"""Packed-forest prediction and warm-start refit of the ensembles."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.extra_trees import ExtraTreesRegressor
from repro.ml.random_forest import RandomForestRegressor
from repro.ml.tree import RegressionTree, pack_trees, predict_packed


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(42)
    X = rng.uniform(size=(120, 5))
    y = X @ np.array([3.0, -2.0, 0.0, 1.0, 0.5]) + 0.1 * rng.normal(size=120)
    return X, y


class TestPackTrees:
    def test_packed_matches_per_tree_predictions(self, data):
        X, y = data
        trees = [
            RegressionTree(min_samples_split=4, seed=seed).fit(X, y)
            for seed in range(5)
        ]
        packed = pack_trees(trees)
        assert packed.n_trees == 5
        assert packed.node_count == sum(t.node_count for t in trees)
        queries = np.random.default_rng(1).uniform(size=(40, 5))
        expected = np.stack([tree.predict(queries) for tree in trees])
        np.testing.assert_array_equal(predict_packed(packed, queries), expected)

    @pytest.mark.parametrize("chunk_rows", [1, 7, 40, 64, 4096])
    def test_chunked_predict_is_bit_identical(self, data, chunk_rows):
        """Row-chunked traversal must reproduce the monolithic pass
        exactly — rows traverse the packed arrays independently."""
        X, y = data
        trees = [
            RegressionTree(min_samples_split=4, seed=seed).fit(X, y)
            for seed in range(5)
        ]
        packed = pack_trees(trees)
        queries = np.random.default_rng(2).uniform(size=(129, 5))
        whole = predict_packed(packed, queries)
        chunked = predict_packed(packed, queries, chunk_rows=chunk_rows)
        np.testing.assert_array_equal(chunked, whole)

    def test_chunk_rows_validation(self, data):
        X, y = data
        packed = pack_trees([RegressionTree(seed=0).fit(X, y)])
        with pytest.raises(ValueError, match="chunk_rows"):
            predict_packed(packed, X, chunk_rows=0)

    def test_single_row_query(self, data):
        X, y = data
        tree = RegressionTree(seed=0).fit(X, y)
        packed = pack_trees([tree])
        row = X[3]
        predictions = predict_packed(packed, row)
        assert predictions.shape == (1, 1)
        np.testing.assert_array_equal(predictions[0], tree.predict(row))

    def test_cart_trees_pack_too(self, data):
        """CARTRegressionTree shares the flat node layout, so the random
        forest benefits from the same packed predict."""
        X, y = data
        forest = RandomForestRegressor(n_estimators=4, seed=0).fit(X, y)
        packed = pack_trees(list(forest.trees))
        queries = np.random.default_rng(2).uniform(size=(10, 5))
        expected = np.stack([tree.predict(queries) for tree in forest.trees])
        np.testing.assert_array_equal(predict_packed(packed, queries), expected)

    def test_rejects_empty_and_unfitted(self, data):
        X, y = data
        with pytest.raises(ValueError, match="empty"):
            pack_trees([])
        with pytest.raises(ValueError, match="fitted"):
            pack_trees([RegressionTree(seed=0), RegressionTree(seed=1).fit(X, y)])


class TestEnsemblePackedPredict:
    def test_extra_trees_predict_uses_packed_path(self, data):
        X, y = data
        model = ExtraTreesRegressor(n_estimators=6, seed=3).fit(X, y)
        queries = np.random.default_rng(3).uniform(size=(25, 5))
        expected = np.stack([tree.predict(queries) for tree in model.trees])
        np.testing.assert_array_equal(model.predict(queries), expected.mean(axis=0))
        mean, std = model.predict(queries, return_std=True)
        np.testing.assert_array_equal(std, expected.std(axis=0))

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError, match="fitted"):
            ExtraTreesRegressor(n_estimators=2, seed=0).predict(np.zeros((1, 3)))


class TestWarmStartRefit:
    def test_validation(self):
        with pytest.raises(ValueError, match="refit_fraction"):
            ExtraTreesRegressor(refit_fraction=0.0)
        with pytest.raises(ValueError, match="refit_fraction"):
            ExtraTreesRegressor(refit_fraction=1.0001)

    def test_partial_refit_keeps_unchosen_trees(self, data):
        X, y = data
        model = ExtraTreesRegressor(n_estimators=8, seed=0, refit_fraction=0.25)
        model.fit(X, y)
        before = model.trees
        model.fit(X, y)
        after = model.trees
        kept = sum(1 for old, new in zip(before, after) if old is new)
        regrown = len(after) - kept
        # ceil(0.25 * 8) = 2 trees regrown, 6 kept by identity.
        assert regrown == 2
        assert kept == 6

    def test_full_refit_regrows_everything(self, data):
        X, y = data
        model = ExtraTreesRegressor(n_estimators=4, seed=0)
        model.fit(X, y)
        before = model.trees
        model.fit(X, y)
        assert all(old is not new for old, new in zip(before, model.trees))

    def test_partial_refit_predictions_stay_packed_consistent(self, data):
        """After a warm-start refit, the packed predictor must reflect
        the mixed ensemble (kept + regrown trees)."""
        X, y = data
        model = ExtraTreesRegressor(n_estimators=6, seed=1, refit_fraction=0.5)
        model.fit(X, y)
        model.fit(X, y)
        queries = np.random.default_rng(4).uniform(size=(15, 5))
        expected = np.stack([tree.predict(queries) for tree in model.trees])
        np.testing.assert_array_equal(model.predict(queries), expected.mean(axis=0))

    def test_default_refit_is_stream_compatible(self, data):
        """refit_fraction=1.0 consumes the RNG exactly like the classic
        implementation: two same-seed ensembles stay identical across
        repeated fits."""
        X, y = data
        a = ExtraTreesRegressor(n_estimators=3, seed=7)
        b = ExtraTreesRegressor(n_estimators=3, seed=7, refit_fraction=1.0)
        queries = np.random.default_rng(5).uniform(size=(10, 5))
        for _ in range(3):
            a.fit(X, y)
            b.fit(X, y)
            np.testing.assert_array_equal(a.predict(queries), b.predict(queries))

    @pytest.mark.parametrize("builder", ["vectorized", "classic"])
    def test_partial_refit_with_either_builder(self, data, builder):
        """Warm-start refit keeps unchosen trees and stays packed-
        consistent regardless of the tree builder."""
        X, y = data
        model = ExtraTreesRegressor(
            n_estimators=8, seed=0, refit_fraction=0.25, tree_builder=builder
        )
        model.fit(X, y)
        before = model.trees
        model.fit(X, y)
        after = model.trees
        kept = sum(1 for old, new in zip(before, after) if old is new)
        assert kept == 6 and len(after) - kept == 2
        queries = np.random.default_rng(6).uniform(size=(20, 5))
        expected = np.stack([tree.predict(queries) for tree in after])
        np.testing.assert_array_equal(model.predict(queries), expected.mean(axis=0))

    def test_partial_refit_actually_tracks_new_data(self, data):
        """A vectorized warm refit on shifted targets moves predictions
        toward the new data (the regrown subset really retrains)."""
        X, y = data
        model = ExtraTreesRegressor(n_estimators=8, seed=2, refit_fraction=0.5)
        model.fit(X, y)
        before = model.predict(X)
        model.fit(X, y + 10.0)
        after = model.predict(X)
        assert np.all(after > before)


class TestPackedDegenerate:
    """predict_packed on deep and degenerate tree shapes."""

    @pytest.mark.parametrize("builder", ["vectorized", "classic"])
    def test_constant_y_collapses_to_root_leaves(self, builder):
        X = np.random.default_rng(0).uniform(size=(30, 4))
        y = np.full(30, 2.5)
        model = ExtraTreesRegressor(n_estimators=3, seed=0, tree_builder=builder)
        model.fit(X, y)
        assert all(tree.node_count == 1 for tree in model.trees)
        np.testing.assert_array_equal(model.predict(X), np.full(30, 2.5))

    @pytest.mark.parametrize("builder", ["vectorized", "classic"])
    def test_max_depth_one_stumps(self, data, builder):
        X, y = data
        model = ExtraTreesRegressor(
            n_estimators=4, max_depth=1, seed=1, tree_builder=builder
        )
        model.fit(X, y)
        assert all(tree.depth() == 1 for tree in model.trees)
        assert all(tree.node_count == 3 for tree in model.trees)
        queries = np.random.default_rng(7).uniform(size=(12, 5))
        expected = np.stack([tree.predict(queries) for tree in model.trees])
        np.testing.assert_array_equal(model.predict(queries), expected.mean(axis=0))

    @pytest.mark.parametrize("builder", ["vectorized", "classic"])
    def test_single_sample_leaves_deep_tree(self, builder):
        """Distinct targets and min_samples_split=2 grow every leaf down
        to one sample; packed traversal must agree with per-tree."""
        rng = np.random.default_rng(3)
        X = rng.uniform(size=(40, 3))
        y = np.arange(40.0)  # all-distinct: forces full purity
        model = ExtraTreesRegressor(
            n_estimators=3, min_samples_split=2, seed=4, tree_builder=builder
        )
        model.fit(X, y)
        # Full purity: every training row predicts its own target.
        np.testing.assert_allclose(model.predict(X), y)
        queries = rng.uniform(size=(25, 3))
        expected = np.stack([tree.predict(queries) for tree in model.trees])
        np.testing.assert_array_equal(model.predict(queries), expected.mean(axis=0))

    @pytest.mark.parametrize("builder", ["vectorized", "classic"])
    def test_two_row_fit(self, builder):
        X = np.array([[0.0, 1.0], [1.0, 0.0]])
        y = np.array([1.0, 3.0])
        model = ExtraTreesRegressor(n_estimators=2, seed=5, tree_builder=builder)
        model.fit(X, y)
        np.testing.assert_allclose(model.predict(X), y)
