"""Unit tests for max-value entropy search."""

import numpy as np
import pytest

from repro.core.acquisition import _sample_min_values, max_value_entropy_search


class TestMinValueSampling:
    def test_samples_concentrate_near_best_mean(self):
        mean = np.array([5.0, 7.0, 9.0])
        std = np.array([1.0, 1.0, 1.0])
        rng = np.random.default_rng(0)
        minima = _sample_min_values(mean, std, rng, 200)
        # Sampled minima concentrate around/below the best posterior mean
        # (the Gumbel quartile fit is approximate, hence the slack).
        assert np.median(minima) < 5.5
        assert np.percentile(minima, 25) < 5.0
        assert minima.min() > 5.0 - 6.5  # bounded by the search window

    def test_tighter_posteriors_give_tighter_minima(self):
        rng = np.random.default_rng(1)
        wide = _sample_min_values(np.array([5.0]), np.array([3.0]), rng, 300)
        rng = np.random.default_rng(1)
        narrow = _sample_min_values(np.array([5.0]), np.array([0.3]), rng, 300)
        assert np.std(narrow) < np.std(wide)


class TestMES:
    def test_uninformative_candidate_scores_zero(self):
        mean = np.array([10.0, 3.0])
        std = np.array([1e-15, 1.0])
        scores = max_value_entropy_search(mean, std, rng=0)
        assert scores[0] == pytest.approx(0.0, abs=1e-6)
        assert scores[1] > 0

    def test_prefers_plausible_optimisers(self):
        # A candidate whose distribution straddles the optimum's value is
        # more informative than one far above it.
        mean = np.array([10.0, 3.2])
        std = np.array([0.5, 0.5])
        scores = max_value_entropy_search(mean, std, rng=0)
        assert scores[1] > scores[0]

    def test_scores_nonnegative(self):
        rng = np.random.default_rng(2)
        mean = rng.uniform(0, 10, size=30)
        std = rng.uniform(0.1, 2.0, size=30)
        scores = max_value_entropy_search(mean, std, rng=3)
        assert np.all(scores >= -1e-9)

    def test_deterministic_given_rng_seed(self):
        mean = np.array([4.0, 5.0, 6.0])
        std = np.array([1.0, 1.0, 1.0])
        a = max_value_entropy_search(mean, std, rng=7)
        b = max_value_entropy_search(mean, std, rng=7)
        assert np.array_equal(a, b)

    def test_all_deterministic_falls_back_to_exploitation(self):
        mean = np.array([4.0, 2.0, 6.0])
        std = np.zeros(3)
        scores = max_value_entropy_search(mean, std, rng=0)
        assert np.argmax(scores) == 1

    def test_invalid_n_samples_rejected(self):
        with pytest.raises(ValueError, match="n_samples"):
            max_value_entropy_search(np.ones(2), np.ones(2), rng=0, n_samples=0)

    def test_drives_naive_bo_to_the_optimum(self, trace):
        from repro.core.naive_bo import NaiveBO

        workload_id = "kmeans/Spark 2.1/small"
        optimum = trace.objective_values(workload_id, "time").min()
        costs = []
        for seed in range(4):
            result = NaiveBO(
                trace.environment(workload_id), seed=seed, acquisition="mes"
            ).run()
            costs.append(result.first_step_reaching(optimum) or 19)
        assert np.median(costs) <= 12

    def test_unknown_acquisition_rejected(self, trace):
        from repro.core.naive_bo import NaiveBO

        with pytest.raises(ValueError, match="unknown acquisition"):
            NaiveBO(trace.environment("kmeans/Spark 2.1/small"), acquisition="ts")
