"""Batched-suggestion equivalence and determinism guarantees.

The contract under test:

* ``batch_size=1`` is the classic sequential loop, bit for bit — same
  :class:`~repro.core.result.SearchResult`, same cache payload bytes —
  on the GP path, the tree path, and under fault plans with quarantine
  active.
* ``batch_size=q`` commits outcomes in catalog-index order with
  per-measurement spawn-key seeding, so results are independent of the
  order the fan-out runs the tasks in.
* The incrementally-grown observation buffers expose exactly the same
  state the per-access rebuilds used to.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.analysis.runner import result_to_payload, valid_payload
from repro.core.acquisition import liar_value, top_q_indices
from repro.core.augmented_bo import AugmentedBO
from repro.core.baselines import RandomSearch
from repro.core.hybrid_bo import HybridBO
from repro.core.naive_bo import NaiveBO
from repro.core.stopping import EIThreshold
from repro.faults.models import FaultInjector, parse_fault_plan
from repro.faults.retry import RetryPolicy

OPTIMIZERS = (NaiveBO, AugmentedBO, HybridBO)

FAULT_SPEC = "transient:rate=0.4+outage:vm=c4.large"


def _payload_bytes(result) -> bytes:
    return json.dumps(result_to_payload(result), sort_keys=True).encode()


def _faulty_env(trace, workload_id, seed=3):
    plan = parse_fault_plan(FAULT_SPEC, seed=seed)
    return FaultInjector(trace.environment(workload_id), plan)


@pytest.mark.parametrize("cls", OPTIMIZERS)
def test_q1_bit_identical_clean(trace, cls):
    workload_id = next(iter(trace.registry)).workload_id
    baseline = cls(trace.environment(workload_id), seed=11).run()
    batched = cls(trace.environment(workload_id), seed=11, batch_size=1).run()
    assert batched == baseline
    assert _payload_bytes(batched) == _payload_bytes(baseline)
    # q=1 takes the sequential path: no batch events at all.
    assert not any(e.kind.startswith("batch_") for e in batched.events)


@pytest.mark.parametrize("cls", OPTIMIZERS)
def test_q1_bit_identical_under_faults(trace, cls):
    """q=1 equivalence with retries running and the breaker quarantining."""
    workload_id = next(iter(trace.registry)).workload_id
    kwargs = dict(
        seed=11,
        retry_policy=RetryPolicy(max_attempts=3, backoff_base_s=0.1),
        quarantine_after=2,
    )
    baseline = cls(_faulty_env(trace, workload_id), **kwargs).run()
    batched = cls(_faulty_env(trace, workload_id), batch_size=1, **kwargs).run()
    assert batched == baseline
    assert _payload_bytes(batched) == _payload_bytes(baseline)
    # The scenario must actually exercise the fault machinery.
    assert baseline.failure_events
    assert "c4.large" in baseline.quarantined_vms


@pytest.mark.parametrize("cls", OPTIMIZERS)
def test_q4_exhausts_catalog_with_batch_events(trace, cls):
    workload_id = next(iter(trace.registry)).workload_id
    result = cls(trace.environment(workload_id), seed=7, batch_size=4).run()
    names = [step.vm_name for step in result.steps]
    assert result.stopped_by == "exhausted"
    assert len(names) == len(set(names)) == 18
    suggested = [e for e in result.events if e.kind == "batch_suggested"]
    measured = [e for e in result.events if e.kind == "batch_measured"]
    # 3 initial + 4 rounds of (4, 4, 4, 3).
    assert len(suggested) == len(measured) == 4
    assert suggested[0].detail.startswith("q=4: ")
    # The batch events survive the cache's payload codec.
    assert valid_payload(result_to_payload(result))


def test_q4_deterministic_and_order_independent(trace):
    """Identical results when the fan-out runs tasks in any order."""
    workload_id = next(iter(trace.registry)).workload_id
    kwargs = dict(
        seed=5,
        batch_size=4,
        retry_policy=RetryPolicy(max_attempts=2, backoff_base_s=0.1),
        quarantine_after=2,
    )

    def reversed_fanout(cells, run_task):
        outcomes = [run_task(cell) for cell in reversed(cells)]
        outcomes.reverse()
        return outcomes

    inline = AugmentedBO(_faulty_env(trace, workload_id), **kwargs).run()
    again = AugmentedBO(_faulty_env(trace, workload_id), **kwargs).run()
    shuffled = AugmentedBO(
        _faulty_env(trace, workload_id),
        measurement_fanout=reversed_fanout,
        **kwargs,
    ).run()
    assert inline == again
    assert shuffled == inline
    assert _payload_bytes(shuffled) == _payload_bytes(inline)
    assert inline.failure_events  # the plan really injected faults


def test_q4_respects_measurement_budget(trace):
    workload_id = next(iter(trace.registry)).workload_id
    result = AugmentedBO(
        trace.environment(workload_id), seed=7, batch_size=4, max_measurements=8
    ).run()
    assert result.stopped_by == "budget"
    # 3 initial + one full round of 4 + a 1-pick truncated round.
    assert len(result.steps) == 8


def test_q4_stopping_criterion_fires(trace):
    workload_id = next(iter(trace.registry)).workload_id
    result = NaiveBO(
        trace.environment(workload_id),
        seed=7,
        batch_size=4,
        stopping=EIThreshold(fraction=10.0),
    ).run()
    assert result.stopped_by == "criterion"
    assert any(e.kind == "stopping_rule_fired" for e in result.events)


def test_default_batch_hook_covers_baselines(trace):
    workload_id = next(iter(trace.registry)).workload_id
    result = RandomSearch(
        trace.environment(workload_id), seed=7, batch_size=3
    ).run()
    names = [step.vm_name for step in result.steps]
    assert result.stopped_by == "exhausted"
    assert len(names) == len(set(names)) == 18


def test_batch_constructor_validation(trace):
    workload_id = next(iter(trace.registry)).workload_id
    env = trace.environment(workload_id)
    with pytest.raises(ValueError, match="batch_size"):
        AugmentedBO(env, batch_size=0)
    with pytest.raises(ValueError, match="liar"):
        AugmentedBO(env, liar="median")


def test_liar_strategies_follow_batch_choice(trace):
    """All liar strategies run the GP batch path and cover the catalog."""
    workload_id = next(iter(trace.registry)).workload_id
    picks = {}
    for liar in ("min", "mean", "max"):
        result = NaiveBO(
            trace.environment(workload_id), seed=7, batch_size=4, liar=liar
        ).run()
        assert result.stopped_by == "exhausted"
        picks[liar] = tuple(step.vm_name for step in result.steps)
    # Strategies fantasize different values, so at least one ordering
    # should differ (all three agreeing would mean the liar is inert).
    assert len(set(picks.values())) > 1


# -- observation-buffer equivalence (the incremental-state refactor) ---------


@pytest.mark.parametrize("cls", OPTIMIZERS)
def test_observation_buffers_match_result(trace, cls):
    workload_id = next(iter(trace.registry)).workload_id
    optimizer = cls(trace.environment(workload_id), seed=11)
    result = optimizer.run()
    values = optimizer.measured_values
    assert isinstance(values, np.ndarray)
    assert not values.flags.writeable
    np.testing.assert_array_equal(
        values, [step.objective_value for step in result.steps]
    )
    assert optimizer.best_observed == min(step.objective_value for step in result.steps)
    catalog = list(optimizer._env.catalog)
    assert [catalog[i].name for i in optimizer.measured_indices] == [
        step.vm_name for step in result.steps
    ]
    assert [m is not None for m in optimizer.measured_measurements] == [True] * len(
        result.steps
    )
    assert len(optimizer.measured_indices) == len(values)


def test_buffers_reset_between_runs(trace):
    """A second run() starts from empty buffers, not stale state.

    (Back-to-back runs draw a fresh initial design from the advancing
    init stream, so the *results* legitimately differ — the invariant is
    that the buffers describe exactly the latest run.)
    """
    workload_id = next(iter(trace.registry)).workload_id
    optimizer = AugmentedBO(trace.environment(workload_id), seed=11)
    optimizer.run()
    second = optimizer.run()
    assert len(optimizer.measured_values) == len(second.steps)
    np.testing.assert_array_equal(
        optimizer.measured_values, [step.objective_value for step in second.steps]
    )


# -- acquisition helper units ------------------------------------------------


def test_liar_value_strategies():
    values = np.array([3.0, 1.0, 2.0])
    assert liar_value(values, "min") == 1.0
    assert liar_value(values, "mean") == 2.0
    assert liar_value(values, "max") == 3.0
    with pytest.raises(ValueError, match="liar"):
        liar_value(values, "median")
    with pytest.raises(ValueError, match="at least one"):
        liar_value(np.array([]), "min")


def test_top_q_indices_is_stable_and_argmax_first():
    scores = np.array([0.3, 0.9, 0.9, 0.1])
    assert top_q_indices(scores, 1) == [int(np.argmax(scores))]
    assert top_q_indices(scores, 3) == [1, 2, 0]
    assert top_q_indices(scores, 10) == [1, 2, 0, 3]
    with pytest.raises(ValueError, match="q"):
        top_q_indices(scores, 0)
