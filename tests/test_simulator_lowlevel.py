"""Unit tests for low-level metric derivation."""

import numpy as np
import pytest

from repro.cloud.vmtypes import get_vm_type
from repro.simulator.lowlevel import METRIC_NAMES, LowLevelMetrics, derive_metrics
from repro.simulator.perfmodel import PerformanceModel
from repro.workloads.spec import ResourceProfile


@pytest.fixture(scope="module")
def model():
    return PerformanceModel()


def profile(**overrides):
    base = dict(
        cpu_seconds=300.0,
        parallel_fraction=0.9,
        working_set_gb=2.0,
        io_gb=10.0,
        shuffle_gb=5.0,
        cpu_gen_sensitivity=0.8,
    )
    base.update(overrides)
    return ResourceProfile(**base)


def metrics_for(model, vm_name, p):
    vm = get_vm_type(vm_name)
    return derive_metrics(vm, p, model.breakdown(vm, p))


class TestVectorRoundtrip:
    def test_to_vector_order_matches_metric_names(self):
        metrics = LowLevelMetrics(1.0, 2.0, 3.0, 4.0, 5.0, 6.0)
        assert metrics.to_vector().tolist() == [1, 2, 3, 4, 5, 6]
        assert len(METRIC_NAMES) == 6

    def test_from_vector_roundtrip(self):
        metrics = LowLevelMetrics(10.5, 20.5, 16.0, 80.0, 33.0, 4.5)
        assert LowLevelMetrics.from_vector(metrics.to_vector()) == metrics

    def test_from_vector_rejects_wrong_length(self):
        with pytest.raises(ValueError, match="6 metric values"):
            LowLevelMetrics.from_vector(np.arange(5.0))


class TestSignalContent:
    def test_memory_bottleneck_shows_in_commit(self, model):
        p = profile(working_set_gb=12.0)
        small = metrics_for(model, "c4.large", p)   # 3.75 GB RAM
        big = metrics_for(model, "r4.2xlarge", p)   # 61 GB RAM
        assert small.mem_commit_pct > 100.0
        assert big.mem_commit_pct < 40.0

    def test_mem_commit_saturates(self, model):
        p = profile(working_set_gb=100.0)
        metrics = metrics_for(model, "c4.large", p)
        assert metrics.mem_commit_pct == pytest.approx(140.0)

    def test_io_bound_workload_shows_iowait(self, model):
        io_heavy = metrics_for(model, "c4.large", profile(io_gb=100.0, cpu_seconds=20.0))
        cpu_heavy = metrics_for(
            model, "c4.large", profile(io_gb=1.0, shuffle_gb=0.0, cpu_seconds=600.0)
        )
        assert io_heavy.cpu_iowait_pct > cpu_heavy.cpu_iowait_pct
        assert io_heavy.disk_util_pct > cpu_heavy.disk_util_pct

    def test_paging_spikes_disk_wait(self, model):
        fits = metrics_for(model, "c4.large", profile(working_set_gb=1.0))
        pages = metrics_for(model, "c4.large", profile(working_set_gb=12.0))
        assert pages.disk_wait_ms > 3 * fits.disk_wait_ms

    def test_task_count_scales_with_cores(self, model):
        p = profile()
        small = metrics_for(model, "c4.large", p)
        big = metrics_for(model, "c4.2xlarge", p)
        assert big.task_count == pytest.approx(4 * small.task_count)

    def test_poorly_parallel_workload_underuses_cpu(self, model):
        parallel = metrics_for(
            model, "c4.2xlarge", profile(parallel_fraction=0.98, io_gb=0.0, shuffle_gb=0.0)
        )
        serial = metrics_for(
            model, "c4.2xlarge", profile(parallel_fraction=0.2, io_gb=0.0, shuffle_gb=0.0)
        )
        assert serial.cpu_user_pct < parallel.cpu_user_pct


class TestRanges:
    def test_metrics_within_plausible_ranges(self, model, catalog, registry):
        for workload in list(registry)[::10]:
            for vm in catalog:
                m = derive_metrics(vm, workload.profile, model.breakdown(vm, workload.profile))
                assert 0 <= m.cpu_user_pct <= 100
                assert 0 <= m.cpu_iowait_pct <= 100
                assert 0 <= m.mem_commit_pct <= 140
                assert 0 <= m.disk_util_pct <= 100
                assert m.disk_wait_ms >= 0
                assert m.task_count > 0
