"""Unit and property tests for acquisition functions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.acquisition import (
    expected_improvement,
    lower_confidence_bound,
    prediction_delta,
    probability_of_improvement,
    top_q_indices,
)


def _top_q_reference(scores: np.ndarray, q: int) -> list[int]:
    """The pre-argpartition implementation: one full stable argsort."""
    scores = np.asarray(scores, dtype=float).ravel()
    order = np.argsort(-scores, kind="stable")
    return [int(i) for i in order[: min(q, scores.size)]]


class TestExpectedImprovement:
    def test_prefers_lower_mean_at_equal_std(self):
        mean = np.array([10.0, 5.0, 8.0])
        std = np.ones(3)
        ei = expected_improvement(mean, std, best_observed=9.0)
        assert np.argmax(ei) == 1

    def test_prefers_higher_std_at_equal_mean(self):
        mean = np.full(2, 10.0)
        std = np.array([0.5, 3.0])
        ei = expected_improvement(mean, std, best_observed=9.0)
        assert ei[1] > ei[0]

    def test_zero_std_gives_deterministic_improvement(self):
        mean = np.array([5.0, 12.0])
        std = np.zeros(2)
        ei = expected_improvement(mean, std, best_observed=10.0)
        assert ei[0] == pytest.approx(5.0)
        assert ei[1] == 0.0

    def test_known_analytic_value(self):
        # improvement = 1, std = 1 -> EI = Phi(1) + phi(1).
        from scipy import stats

        ei = expected_improvement(np.array([0.0]), np.array([1.0]), best_observed=1.0)
        assert ei[0] == pytest.approx(stats.norm.cdf(1) + stats.norm.pdf(1))

    @settings(max_examples=50, deadline=None)
    @given(
        mean=st.lists(st.floats(-100, 100), min_size=1, max_size=10),
        std_scale=st.floats(0, 10),
        best=st.floats(-100, 100),
    )
    def test_ei_is_never_negative(self, mean, std_scale, best):
        mean_arr = np.array(mean)
        std = np.full(len(mean), std_scale)
        ei = expected_improvement(mean_arr, std, best)
        assert np.all(ei >= 0)

    def test_mismatched_shapes_raise(self):
        with pytest.raises(ValueError, match="shape"):
            expected_improvement(np.zeros(3), np.zeros(2), 0.0)

    def test_negative_std_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            expected_improvement(np.zeros(2), np.array([1.0, -1.0]), 0.0)


class TestProbabilityOfImprovement:
    def test_half_probability_at_incumbent(self):
        pi = probability_of_improvement(np.array([10.0]), np.array([2.0]), 10.0)
        assert pi[0] == pytest.approx(0.5)

    def test_bounded_in_unit_interval(self):
        rng = np.random.default_rng(0)
        pi = probability_of_improvement(rng.normal(size=50), np.abs(rng.normal(size=50)), 0.0)
        assert np.all((pi >= 0) & (pi <= 1))

    def test_zero_std_is_indicator(self):
        pi = probability_of_improvement(np.array([5.0, 15.0]), np.zeros(2), 10.0)
        assert pi.tolist() == [1.0, 0.0]


class TestLowerConfidenceBound:
    def test_kappa_zero_reduces_to_prediction_delta(self):
        mean = np.array([3.0, 1.0, 2.0])
        lcb = lower_confidence_bound(mean, np.ones(3), kappa=0.0)
        assert np.allclose(lcb, prediction_delta(mean))

    def test_higher_kappa_rewards_uncertainty(self):
        mean = np.full(2, 5.0)
        std = np.array([0.1, 2.0])
        assert np.argmax(lower_confidence_bound(mean, std, kappa=3.0)) == 1

    def test_negative_kappa_rejected(self):
        with pytest.raises(ValueError, match="kappa"):
            lower_confidence_bound(np.zeros(1), np.ones(1), kappa=-1.0)


class TestPredictionDelta:
    def test_argmax_is_argmin_of_mean(self):
        mean = np.array([4.0, 9.0, 1.0, 6.0])
        assert np.argmax(prediction_delta(mean)) == np.argmin(mean)

    @settings(max_examples=50, deadline=None)
    @given(mean=st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=20))
    def test_scores_are_elementwise_negation(self, mean):
        mean_arr = np.array(mean)
        assert np.array_equal(prediction_delta(mean_arr), -mean_arr)


class TestTopQIndices:
    """The argpartition fast path must be indistinguishable from the
    legacy full stable argsort — argmax first, ties to the lowest
    position — for every q from 1 to n."""

    @settings(max_examples=60, deadline=None)
    @given(
        scores=st.lists(
            # A handful of repeated values forces heavy ties, the case
            # argpartition alone gets wrong.
            st.sampled_from([-2.0, -1.0, 0.0, 0.5, 1.0, 3.0]),
            min_size=1,
            max_size=120,
        )
    )
    def test_matches_reference_for_every_q(self, scores):
        arr = np.array(scores)
        for q in range(1, arr.size + 1):
            assert top_q_indices(arr, q) == _top_q_reference(arr, q)

    @settings(max_examples=40, deadline=None)
    @given(
        scores=st.lists(
            st.floats(-1e9, 1e9), min_size=65, max_size=200
        ),
        q=st.integers(1, 50),
    )
    def test_large_distinct_inputs_hit_fast_path(self, scores, q):
        arr = np.array(scores)
        assert top_q_indices(arr, q) == _top_q_reference(arr, q)

    def test_catalog_scale_with_ties(self):
        rng = np.random.default_rng(0)
        arr = rng.choice([0.0, 1.0, 2.0, 3.0], size=390)
        for q in (1, 4, 64, 65, 200, 390):
            assert top_q_indices(arr, q) == _top_q_reference(arr, q)
        assert top_q_indices(arr, 1) == [int(np.argmax(arr))]

    def test_nan_scores_fall_back_to_stable_sort(self):
        arr = np.full(100, 1.0)
        arr[10] = np.nan
        arr[50] = 5.0
        assert top_q_indices(arr, 3) == _top_q_reference(arr, 3)
