"""Unit tests for the generic SMBO loop (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.objectives import Objective
from repro.core.smbo import AcquisitionScores, SequentialOptimizer
from repro.core.stopping import MaxMeasurements, PredictionDeltaThreshold


class OracleOptimizer(SequentialOptimizer):
    """Test double: scores candidates by (negated) true objective values.

    Knows the trace, so after the initial design it always proposes the
    true best unmeasured VM; used to test the loop, not the science.
    """

    name = "oracle"

    def __init__(self, environment, truth, **kwargs):
        super().__init__(environment, **kwargs)
        self._truth = truth

    def _score_candidates(self, unmeasured):
        predicted = self._truth[unmeasured]
        return AcquisitionScores(scores=-predicted, predicted=predicted)


@pytest.fixture()
def environment(trace):
    return trace.environment("kmeans/Spark 2.1/small")


@pytest.fixture()
def truth(trace):
    return trace.times_for("kmeans/Spark 2.1/small")


class TestLoopMechanics:
    def test_runs_to_exhaustion_without_stopping(self, environment, truth):
        result = OracleOptimizer(environment, truth, seed=0).run()
        assert result.search_cost == 18
        assert result.stopped_by == "exhausted"
        assert len(set(result.measured_vm_names)) == 18

    def test_oracle_finds_optimum_right_after_init(self, environment, truth):
        result = OracleOptimizer(environment, truth, seed=0, n_initial=3).run()
        best_name = environment.catalog[int(np.argmin(truth))].name
        # Either the initial design hit it, or it is the 4th measurement.
        assert best_name in result.measured_vm_names[:4]

    def test_initial_design_size_respected(self, environment, truth):
        result = OracleOptimizer(environment, truth, seed=1, n_initial=5).run()
        assert len(result.steps) >= 5

    def test_initial_design_is_distinct(self, environment, truth):
        optimizer = OracleOptimizer(environment, truth, seed=2, n_initial=6)
        initial = optimizer._initial_indices()
        assert len(set(initial)) == 6

    def test_explicit_initial_design(self, environment, truth):
        optimizer = OracleOptimizer(environment, truth, seed=0, initial_design=[4, 9, 13])
        result = optimizer.run()
        names = [environment.catalog[i].name for i in (4, 9, 13)]
        assert list(result.measured_vm_names[:3]) == names

    def test_run_initial_vms_argument_overrides(self, environment, truth):
        result = OracleOptimizer(environment, truth, seed=0).run(initial_vms=[0, 1])
        assert result.measured_vm_names[:2] == (
            environment.catalog[0].name,
            environment.catalog[1].name,
        )

    def test_duplicate_initial_design_rejected(self, environment, truth):
        with pytest.raises(ValueError, match="repeat"):
            OracleOptimizer(environment, truth, seed=0).run(initial_vms=[3, 3])

    def test_empty_initial_design_rejected(self, environment, truth):
        with pytest.raises(ValueError, match="at least one"):
            OracleOptimizer(environment, truth, seed=0).run(initial_vms=[])

    def test_never_remeasures(self, environment, truth):
        result = OracleOptimizer(environment, truth, seed=3).run()
        assert len(set(result.measured_vm_names)) == result.search_cost

    def test_measurement_accounting_matches_environment(self, environment, truth):
        optimizer = OracleOptimizer(environment, truth, seed=0)
        result = optimizer.run()
        assert environment.measurement_count == result.search_cost


class TestBudgetAndStopping:
    def test_budget_stops_search(self, environment, truth):
        result = OracleOptimizer(environment, truth, seed=0, max_measurements=7).run()
        assert result.search_cost == 7
        assert result.stopped_by == "budget"

    def test_budget_smaller_than_initial_rejected(self, environment, truth):
        with pytest.raises(ValueError, match="max_measurements"):
            OracleOptimizer(environment, truth, seed=0, n_initial=5, max_measurements=3)

    def test_stopping_criterion_fires(self, environment, truth):
        stopping = PredictionDeltaThreshold(threshold=1.0, min_measurements=4)
        result = OracleOptimizer(environment, truth, seed=0, stopping=stopping).run()
        assert result.stopped_by == "criterion"
        assert result.search_cost < 18

    def test_oracle_with_delta_stopping_keeps_optimum(self, trace):
        """With perfect predictions, stopping at threshold 1.0 must never
        sacrifice the optimum."""
        for workload in list(trace.registry)[::25]:
            env = trace.environment(workload)
            truth = trace.times_for(workload)
            stopping = PredictionDeltaThreshold(threshold=1.0, min_measurements=4)
            result = OracleOptimizer(env, truth, seed=0, stopping=stopping).run()
            assert result.best_value == pytest.approx(truth.min())

    def test_max_measurements_with_stopping(self, environment, truth):
        result = OracleOptimizer(
            environment, truth, seed=0,
            stopping=MaxMeasurements(5), max_measurements=10,
        ).run()
        assert result.search_cost == 5
        assert result.stopped_by == "criterion"


class TestStateAccessors:
    def test_best_observed_tracks_minimum(self, environment, truth):
        optimizer = OracleOptimizer(environment, truth, seed=0)
        with pytest.raises(RuntimeError):
            optimizer.best_observed
        optimizer.run()
        assert optimizer.best_observed == pytest.approx(min(optimizer.measured_values))

    def test_invalid_n_initial_rejected(self, environment, truth):
        with pytest.raises(ValueError, match="n_initial"):
            OracleOptimizer(environment, truth, n_initial=0)

    def test_result_carries_workload_id(self, environment, truth):
        result = OracleOptimizer(environment, truth, seed=0).run()
        assert result.workload_id == "kmeans/Spark 2.1/small"

    def test_score_shape_mismatch_detected(self, environment, truth):
        class Broken(OracleOptimizer):
            def _score_candidates(self, unmeasured):
                return AcquisitionScores(scores=np.zeros(1))

        with pytest.raises(RuntimeError, match="expected .* scores"):
            Broken(environment, truth, seed=0).run()
