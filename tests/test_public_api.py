"""Tests of the public API surface."""

import importlib

import pytest

import repro


class TestTopLevelPackage:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_version_is_semver_like(self):
        major, minor, patch = repro.__version__.split(".")
        assert all(part.isdigit() for part in (major, minor, patch))

    @pytest.mark.parametrize(
        "module",
        [
            "repro.cloud",
            "repro.workloads",
            "repro.simulator",
            "repro.trace",
            "repro.ml",
            "repro.core",
            "repro.analysis",
            "repro.analysis.experiments",
            "repro.cli",
        ],
    )
    def test_subpackages_import_cleanly(self, module):
        importlib.import_module(module)

    @pytest.mark.parametrize(
        "module",
        ["repro.cloud", "repro.simulator", "repro.ml", "repro.core", "repro.analysis"],
    )
    def test_subpackage_all_names_resolve(self, module):
        mod = importlib.import_module(module)
        for name in mod.__all__:
            assert getattr(mod, name) is not None

    def test_every_public_symbol_has_a_docstring(self):
        import inspect

        missing = [
            name
            for name in repro.__all__
            if not name.startswith("__")
            and (inspect.isclass(getattr(repro, name)) or inspect.isfunction(getattr(repro, name)))
            and not (getattr(repro, name).__doc__ or "").strip()
        ]
        assert not missing, f"symbols without docstrings: {missing}"


class TestReadmeQuickstart:
    def test_quickstart_snippet_runs(self):
        """The README's quickstart, executed as written."""
        from repro import AugmentedBO, Objective, PredictionDeltaThreshold, default_trace

        trace = default_trace()
        env = trace.environment("als/Spark 2.1/medium")
        result = AugmentedBO(
            env,
            objective=Objective.COST,
            stopping=PredictionDeltaThreshold(threshold=1.1),
            seed=42,
        ).run()
        assert result.best_vm_name
        assert result.search_cost >= 4


class TestExamplesImport:
    @pytest.mark.parametrize(
        "example",
        [
            "quickstart",
            "find_cost_effective_vm",
            "kernel_fragility",
            "timecost_tradeoff",
            "history_prior",
        ],
    )
    def test_examples_are_importable(self, example):
        """Examples must at least parse and import (mains not executed)."""
        import importlib.util
        from pathlib import Path

        path = Path(__file__).parent.parent / "examples" / f"{example}.py"
        spec = importlib.util.spec_from_file_location(f"example_{example}", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        assert callable(module.main)
