"""Grid checkpoint journal: durability, damage tolerance, signal flush."""

from __future__ import annotations

import json
import os
import signal

import pytest

from repro.parallel.checkpoint import GridCheckpoint, flush_on_signal

PAYLOAD_A = {"optimizer": "x", "stopped_by": "budget", "steps": [["vm", 1.0, 1]]}
PAYLOAD_B = {"optimizer": "y", "stopped_by": "budget", "steps": [["vm", 2.0, 1]]}


class TestGridCheckpoint:
    def test_record_load_roundtrip(self, tmp_path):
        journal = GridCheckpoint(tmp_path / "grid.journal", cache_key="g__time")
        journal.record(("w1", 0), PAYLOAD_A)
        journal.record(("w1", 1), PAYLOAD_B)
        journal.close()
        loaded = GridCheckpoint(tmp_path / "grid.journal", cache_key="g__time").load()
        assert loaded == {("w1", 0): PAYLOAD_A, ("w1", 1): PAYLOAD_B}

    def test_load_missing_journal_is_empty(self, tmp_path):
        assert GridCheckpoint(tmp_path / "none.journal", cache_key="g").load() == {}

    def test_truncated_tail_is_skipped(self, tmp_path):
        path = tmp_path / "grid.journal"
        journal = GridCheckpoint(path, cache_key="g")
        journal.record(("w1", 0), PAYLOAD_A)
        journal.record(("w1", 1), PAYLOAD_B)
        journal.close()
        # Simulate dying mid-append: chop bytes off the last line.
        raw = path.read_bytes()
        path.write_bytes(raw[:-15])
        loaded = GridCheckpoint(path, cache_key="g").load()
        assert loaded == {("w1", 0): PAYLOAD_A}

    def test_foreign_cache_key_contributes_nothing(self, tmp_path):
        path = tmp_path / "grid.journal"
        journal = GridCheckpoint(path, cache_key="grid-a__time")
        journal.record(("w1", 0), PAYLOAD_A)
        journal.close()
        assert GridCheckpoint(path, cache_key="grid-b__time").load() == {}

    def test_malformed_records_are_skipped(self, tmp_path):
        path = tmp_path / "grid.journal"
        lines = [
            "not json at all",
            json.dumps([1, 2, 3]),
            json.dumps({"cache_key": "g", "workload": 5, "repeat": 0, "result": {}}),
            json.dumps({"cache_key": "g", "workload": "w", "repeat": "0", "result": {}}),
            json.dumps({"cache_key": "g", "workload": "w", "repeat": 0, "result": PAYLOAD_A}),
        ]
        path.write_text("\n".join(lines) + "\n")
        assert GridCheckpoint(path, cache_key="g").load() == {("w", 0): PAYLOAD_A}

    def test_clear_removes_the_file(self, tmp_path):
        path = tmp_path / "grid.journal"
        journal = GridCheckpoint(path, cache_key="g")
        journal.record(("w1", 0), PAYLOAD_A)
        journal.clear()
        assert not path.exists()
        journal.clear()  # idempotent

    def test_records_survive_without_close(self, tmp_path):
        """Every record is fsync'd: bytes are durable before close()."""
        path = tmp_path / "grid.journal"
        journal = GridCheckpoint(path, cache_key="g")
        journal.record(("w1", 0), PAYLOAD_A)
        # Read through a second handle while the first is still open.
        assert GridCheckpoint(path, cache_key="g").load() == {("w1", 0): PAYLOAD_A}
        journal.close()

    def test_context_manager_closes(self, tmp_path):
        path = tmp_path / "grid.journal"
        with GridCheckpoint(path, cache_key="g") as journal:
            journal.record(("w1", 0), PAYLOAD_A)
        assert journal._handle is None


class TestFlushOnSignal:
    def test_sigterm_flushes_then_exits(self):
        flushed = []
        with pytest.raises(SystemExit) as excinfo:
            with flush_on_signal(lambda: flushed.append("yes")):
                os.kill(os.getpid(), signal.SIGTERM)
        assert flushed == ["yes"]
        assert excinfo.value.code == 128 + signal.SIGTERM

    def test_sigint_flushes_then_keyboard_interrupts(self):
        flushed = []
        with pytest.raises(KeyboardInterrupt):
            with flush_on_signal(lambda: flushed.append("yes")):
                os.kill(os.getpid(), signal.SIGINT)
        assert flushed == ["yes"]

    def test_handlers_restored_after_block(self):
        before_int = signal.getsignal(signal.SIGINT)
        before_term = signal.getsignal(signal.SIGTERM)
        with flush_on_signal(lambda: None):
            assert signal.getsignal(signal.SIGINT) is not before_int
        assert signal.getsignal(signal.SIGINT) is before_int
        assert signal.getsignal(signal.SIGTERM) is before_term

    def test_no_signal_means_no_flush(self):
        flushed = []
        with flush_on_signal(lambda: flushed.append("yes")):
            pass
        assert flushed == []

    def test_worker_threads_run_unprotected(self):
        import threading

        outcome = {}

        def body():
            with flush_on_signal(lambda: None):
                outcome["ran"] = True

        thread = threading.Thread(target=body)
        thread.start()
        thread.join()
        assert outcome == {"ran": True}
