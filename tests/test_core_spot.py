"""Optimizer-level spot pricing: retry ladder, partial credit, fallback.

The contract under test:

* With ``spot=None`` nothing changes: integer charged cost, no spot
  events — the on-demand path is the historic path.
* With a :class:`~repro.cloud.spot.SpotPolicy`, successes are charged
  the discounted price ratio, revocations bill only the progress made
  (at spot price) and bank a checkpoint, and retries that resume from
  the checkpoint are strictly cheaper than starting from scratch.
* After ``fallback_after`` revocations inside one observation's retry
  ladder the remaining attempts run on-demand (``fallback_to_ondemand``
  event) at full price.
* Spot runs are deterministic given the market seed and independent of
  batch fan-out order (q=4), with the PR-7 batch-commit divergence
  pinned — not silently drifting — under revocations.
"""

from __future__ import annotations

import pytest

from repro.cloud.spot import SpotMarket, SpotPolicy
from repro.core.augmented_bo import AugmentedBO
from repro.core.baselines import RandomSearch
from repro.faults.models import FaultInjector, FaultPlan, SpotInterruptions
from repro.faults.retry import RetryPolicy

WORKLOAD = "kmeans/Spark 2.1/small"

#: High-hazard market: revocations reliably appear in an 18-VM sweep.
HOT_MARKET = dict(seed=5, base_hazard=0.25, hazard_slope=0.5)


def _spot_env(trace, market: SpotMarket, seed: int = 0):
    plan = FaultPlan((SpotInterruptions(market=market),), seed=seed)
    return FaultInjector(trace.environment(WORKLOAD), plan)


def _policy(**overrides) -> SpotPolicy:
    return SpotPolicy(market=SpotMarket(**HOT_MARKET), **overrides)


class TestOnDemandUnchanged:
    def test_no_spot_means_integer_unit_billing(self, trace):
        result = RandomSearch(trace.environment(WORKLOAD), seed=0).run()
        assert isinstance(result.charged_cost, int)
        assert result.charged_cost == result.search_cost
        assert all(step.charge == 1.0 for step in result.steps)
        kinds = {e.kind for e in result.events}
        assert "spot_revoked" not in kinds
        assert "fallback_to_ondemand" not in kinds


class TestSpotCharges:
    def test_success_charges_the_discounted_ratio(self, trace):
        # Spot policy over a clean environment (no revocation plan):
        # every measurement succeeds first try at the discounted price.
        market = SpotMarket(seed=5)
        result = RandomSearch(
            trace.environment(WORKLOAD), seed=0, spot=SpotPolicy(market=market)
        ).run()
        assert result.failure_count == 0
        for step in result.steps:
            assert step.charge == pytest.approx(1.0 - market.discount(step.vm_name))
        assert result.charged_cost < result.search_cost

    def test_objective_values_are_untouched_by_pricing(self, trace):
        # Spot pricing changes what a measurement *costs*, never what it
        # *returns* — the trace stays ground truth.
        on_demand = RandomSearch(trace.environment(WORKLOAD), seed=0).run()
        spot = RandomSearch(
            trace.environment(WORKLOAD), seed=0,
            spot=SpotPolicy(market=SpotMarket(seed=5)),
        ).run()
        assert [s.objective_value for s in spot.steps] == [
            s.objective_value for s in on_demand.steps
        ]
        assert spot.best_vm_name == on_demand.best_vm_name

    def test_spot_run_is_deterministic(self, trace):
        def run():
            market = SpotMarket(**HOT_MARKET)
            return RandomSearch(
                _spot_env(trace, market), seed=3, measure_retries=5,
                spot=_policy(),
            ).run()

        a, b = run(), run()
        assert a == b
        assert a.charged_cost == b.charged_cost

    def test_revocations_bill_partial_progress(self, trace):
        market = SpotMarket(**HOT_MARKET)
        result = RandomSearch(
            _spot_env(trace, market), seed=3, measure_retries=5, spot=_policy()
        ).run()
        revoked = [e for e in result.events if e.kind == "spot_revoked"]
        assert revoked, "hot market produced no revocations"
        # Every revocation bills strictly less than a whole attempt at
        # the VM's spot price: only the progress made, discounted.
        revoked_failures = [
            f for f in result.failure_events if "revoked" in f.error
        ]
        assert revoked_failures
        for failure in revoked_failures:
            assert 0.0 <= failure.charge < 1.0 - market.discount(failure.vm_name) + 1e-9

    def test_resume_credit_makes_retries_strictly_cheaper(self, trace):
        def charged(credit: float) -> float:
            market = SpotMarket(**HOT_MARKET)
            result = RandomSearch(
                _spot_env(trace, market), seed=3, measure_retries=5,
                spot=_policy(resume_credit=credit, fallback_after=1_000_000),
            ).run()
            assert any(e.kind == "spot_revoked" for e in result.events)
            return result.charged_cost

        # Identical market, identical revocation stream: the only
        # difference is whether retries resume from the checkpoint.
        assert charged(1.0) < charged(0.0)


class TestFallback:
    def test_fallback_event_after_threshold(self, trace):
        market = SpotMarket(**HOT_MARKET)
        result = RandomSearch(
            _spot_env(trace, market), seed=3, measure_retries=5,
            spot=_policy(fallback_after=1),
        ).run()
        fallbacks = [e for e in result.events if e.kind == "fallback_to_ondemand"]
        assert fallbacks, "fallback_after=1 under a hot market never fell back"
        for event in fallbacks:
            assert "on-demand" in event.detail

    def test_fallback_disabled_by_large_threshold(self, trace):
        market = SpotMarket(**HOT_MARKET)
        result = RandomSearch(
            _spot_env(trace, market), seed=3, measure_retries=5,
            spot=_policy(fallback_after=1_000_000),
        ).run()
        assert any(e.kind == "spot_revoked" for e in result.events)
        assert not any(e.kind == "fallback_to_ondemand" for e in result.events)


class TestRevocationQuarantine:
    def test_churn_quarantines_a_vm(self, trace):
        # Quarantine after 2 cumulative revocations of one VM, with
        # fallback effectively off and few ladder retries, so churn
        # accumulates across rounds.
        market = SpotMarket(seed=9, base_hazard=0.55, hazard_slope=0.4)
        plan = FaultPlan((SpotInterruptions(market=market),), seed=1)
        result = RandomSearch(
            FaultInjector(trace.environment(WORKLOAD), plan),
            seed=3,
            measure_retries=1,
            spot=SpotPolicy(
                market=market, fallback_after=1_000_000, revocation_quarantine=2
            ),
        ).run()
        churn = [
            e for e in result.events
            if e.kind == "vm_quarantined" and "spot churn" in e.detail
        ]
        assert churn, "no churn quarantine under a 55%-hazard market"
        assert result.quarantined_vms


class TestBatchSpot:
    """q=4 under spot: deterministic, order-independent, divergence pinned."""

    def _kwargs(self, **extra):
        kwargs = dict(
            seed=5,
            measure_retries=3,
            retry_policy=RetryPolicy(max_attempts=4, backoff_base_s=0.1),
            spot=_policy(),
        )
        kwargs.update(extra)
        return kwargs

    def test_q4_clean_spot_matches_serial(self, trace):
        # No revocation plan: the batch path has nothing to retry, so
        # q=4 must measure the same VMs and bill the same charges the
        # serial loop does (the PR-7 divergence is retry-scheduling
        # only).
        market = SpotMarket(seed=5)
        serial = AugmentedBO(
            trace.environment(WORKLOAD), seed=5, spot=SpotPolicy(market=market)
        ).run()
        batched = AugmentedBO(
            trace.environment(WORKLOAD), seed=5, batch_size=4,
            spot=SpotPolicy(market=market),
        ).run()
        assert sorted(batched.measured_vm_names) == sorted(serial.measured_vm_names)
        assert batched.charged_cost == pytest.approx(serial.charged_cost)
        assert batched.best_vm_name == serial.best_vm_name

    def test_q4_spot_deterministic_and_order_independent(self, trace):
        def build(fanout=None):
            market = SpotMarket(**HOT_MARKET)
            return AugmentedBO(
                _spot_env(trace, market),
                batch_size=4,
                measurement_fanout=fanout,
                **self._kwargs(),
            )

        def reversed_fanout(cells, run_task):
            outcomes = [run_task(cell) for cell in reversed(cells)]
            outcomes.reverse()
            return outcomes

        inline = build().run()
        again = build().run()
        shuffled = build(fanout=reversed_fanout).run()
        assert inline == again
        assert shuffled == inline
        assert any(e.kind == "spot_revoked" for e in inline.events)

    def test_q4_divergence_from_serial_is_pinned(self, trace):
        """The PR-7 batch-commit divergence, now with revocations.

        A batched task runs its full retry ladder before the commit
        lands quarantine/fallback state, so q=4 may retry (and be
        charged for) attempts the serial loop would have skipped.  The
        divergence is intentional; this pins it so a silent semantic
        change in either path fails loudly.
        """
        def run(batch_size: int):
            market = SpotMarket(**HOT_MARKET)
            return AugmentedBO(
                _spot_env(trace, market),
                batch_size=batch_size,
                **self._kwargs(),
            ).run()

        serial, batched = run(1), run(4)
        # Both paths are individually reproducible ...
        assert run(1) == serial
        assert run(4) == batched
        # ... and both saw revocations under the hot market.
        assert any(e.kind == "spot_revoked" for e in serial.events)
        assert any(e.kind == "spot_revoked" for e in batched.events)
        # The pinned divergence: same search, different retry schedule,
        # hence different charged totals.
        assert serial.charged_cost != batched.charged_cost
