"""Incremental pair-matrix cache of the augmented surrogate.

Property under test: after every step of a seeded search, the cached
(incrementally extended) training set equals the from-scratch enumeration
of all ordered measured pairs — the reference `_training_set` the unit
tests pin.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.augmented_bo import AugmentedBO, PairwiseTreeScorer

WORKLOAD = "kmeans/Spark 2.1/small"


def _reference(scorer, optimizer):
    metrics = np.array(
        [m.metrics.to_vector() for m in optimizer.measured_measurements]
    )
    return scorer._training_set(
        optimizer.measured_indices,
        np.log(optimizer.measured_values),
        metrics,
    )


class TestIncrementalEqualsFromScratch:
    @pytest.mark.parametrize("seed", [0, 7])
    def test_after_every_step_of_a_search(self, trace, seed):
        """The cache is validated against the reference after each step
        by hooking the optimiser's scoring path."""
        optimizer = AugmentedBO(trace.environment(WORKLOAD), seed=seed)
        scorer = optimizer.scorer
        checked = []
        original = scorer.score

        def checking_score(measured, values, measurements, unmeasured):
            result = original(measured, values, measurements, unmeasured)
            cached_X, cached_y = scorer.cached_training_set()
            ref_X, ref_y = _reference(scorer, optimizer)
            np.testing.assert_array_equal(cached_X, ref_X)
            np.testing.assert_array_equal(cached_y, ref_y)
            checked.append(len(measured))
            return result

        scorer.score = checking_score
        optimizer.run()
        # Every acquisition round was checked, at growing history sizes.
        assert checked == sorted(checked)
        assert len(checked) >= 10

    def test_relational_false_targets(self, trace):
        optimizer = AugmentedBO(trace.environment(WORKLOAD), seed=0, relational=False)
        optimizer.run()
        scorer = optimizer.scorer
        # The cache is one step behind after run() (the final measurement
        # is never scored), so extend it to the full history first.
        scorer.score(
            optimizer.measured_indices,
            optimizer.measured_values,
            optimizer.measured_measurements,
            [0],
        )
        cached_X, cached_y = scorer.cached_training_set()
        ref_X, ref_y = _reference(scorer, optimizer)
        np.testing.assert_array_equal(cached_X, ref_X)
        np.testing.assert_array_equal(cached_y, ref_y)


class TestCacheRebuild:
    def test_divergent_history_rebuilds(self):
        """A call whose history does not extend the previous one must
        rebuild the cache, not extend it."""
        rng = np.random.default_rng(0)
        design = rng.uniform(size=(8, 4))

        class FakeMetrics:
            def __init__(self, vector):
                self._vector = np.asarray(vector, dtype=float)

            def to_vector(self):
                return self._vector

        class FakeMeasurement:
            def __init__(self, vector):
                self.metrics = FakeMetrics(vector)

        def measurements_for(indices):
            return [FakeMeasurement(rng2.uniform(size=3)) for _ in indices]

        scorer = PairwiseTreeScorer(design, n_estimators=4, seed=1)
        rng2 = np.random.default_rng(1)
        first = [0, 1, 2]
        meas1 = measurements_for(first)
        values1 = np.array([3.0, 2.0, 4.0])
        scorer.score(first, values1, meas1, [5, 6])

        # Same length but different VM at position 1: not an extension.
        second = [0, 3, 2]
        meas2 = [meas1[0], FakeMeasurement(rng2.uniform(size=3)), meas1[2]]
        values2 = np.array([3.0, 5.0, 4.0])
        scorer.score(second, values2, meas2, [5, 6])
        cached_X, cached_y = scorer.cached_training_set()
        metrics = np.array([m.metrics.to_vector() for m in meas2])
        ref_X, ref_y = scorer._training_set(second, np.log(values2), metrics)
        np.testing.assert_array_equal(cached_X, ref_X)
        np.testing.assert_array_equal(cached_y, ref_y)

    def test_cached_training_set_requires_a_score_call(self):
        scorer = PairwiseTreeScorer(np.eye(4), n_estimators=2, seed=0)
        with pytest.raises(RuntimeError, match="no pair cache"):
            scorer.cached_training_set()


class TestRefitFraction:
    def test_validation(self):
        with pytest.raises(ValueError, match="refit_fraction"):
            PairwiseTreeScorer(np.eye(4), refit_fraction=0.0)
        with pytest.raises(ValueError, match="refit_fraction"):
            PairwiseTreeScorer(np.eye(4), refit_fraction=1.5)
        with pytest.raises(ValueError, match="extra_trees"):
            PairwiseTreeScorer(
                np.eye(4), ensemble="random_forest", refit_fraction=0.5
            )

    def test_full_refit_is_default_and_bit_identical(self, trace):
        plain = AugmentedBO(trace.environment(WORKLOAD), seed=5).run()
        explicit = AugmentedBO(
            trace.environment(WORKLOAD), seed=5, refit_fraction=1.0
        ).run()
        assert plain == explicit

    def test_warm_start_is_deterministic(self, trace):
        first = AugmentedBO(
            trace.environment(WORKLOAD), seed=5, refit_fraction=0.25
        ).run()
        second = AugmentedBO(
            trace.environment(WORKLOAD), seed=5, refit_fraction=0.25
        ).run()
        assert first == second

    def test_warm_start_still_finds_good_vms(self, trace):
        result = AugmentedBO(
            trace.environment(WORKLOAD), seed=0, refit_fraction=0.25
        ).run()
        optimum = trace.objective_values(WORKLOAD, "time").min()
        assert result.best_value <= 1.5 * optimum


class TestStepTimings:
    def test_timings_are_recorded(self, trace):
        optimizer = AugmentedBO(trace.environment(WORKLOAD), seed=0)
        optimizer.run()
        timings = optimizer.scorer.step_timings
        assert timings
        assert [t["n_measured"] for t in timings] == sorted(
            t["n_measured"] for t in timings
        )
        for entry in timings:
            assert entry["build_s"] >= 0.0
            assert entry["fit_s"] > 0.0
            assert entry["predict_s"] > 0.0
            assert entry["query_s"] >= 0.0
            assert entry["n_candidates"] >= 1


class TestQueryModes:
    """The incremental query-row buffer vs the legacy repeat/tile
    rebuild: same floats, different assembly."""

    def test_validation(self, trace):
        with pytest.raises(ValueError, match="query_mode"):
            AugmentedBO(trace.environment(WORKLOAD), query_mode="cached")

    @pytest.mark.parametrize("seed", [0, 3])
    def test_full_search_is_bit_identical(self, trace, seed):
        runs = {}
        for mode in ("incremental", "rebuild"):
            optimizer = AugmentedBO(
                trace.environment(WORKLOAD), seed=seed, query_mode=mode
            )
            result = optimizer.run()
            runs[mode] = (
                result.measured_vm_names,
                [s.objective_value for s in result.steps],
            )
        assert runs["incremental"] == runs["rebuild"]

    def test_scores_equal_at_every_history(self, trace):
        """Scorer-level check: identical score vectors while the history
        (and with it the scaler statistics) grows, then again on a
        repeated call at fixed history (the frozen-scaler fast path)."""
        environment = trace.environment(WORKLOAD)
        environment.reset()
        catalog = list(environment.catalog)
        measurements = [environment.measure(vm) for vm in catalog[:8]]
        values = [m.execution_time_s for m in measurements]
        design = AugmentedBO(environment, seed=0).design_matrix

        fast = PairwiseTreeScorer(design, seed=1, query_mode="incremental")
        slow = PairwiseTreeScorer(design, seed=1, query_mode="rebuild")
        for upto in (4, 5, 6, 7, 8, 8):  # repeated 8 = fixed-history call
            measured = list(range(upto))
            unmeasured = list(range(upto, len(catalog)))
            a = fast.score(measured, values[:upto], measurements[:upto], unmeasured)
            b = slow.score(measured, values[:upto], measurements[:upto], unmeasured)
            np.testing.assert_array_equal(a.scores, b.scores)
            np.testing.assert_array_equal(a.predicted, b.predicted)
