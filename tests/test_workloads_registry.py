"""Unit tests for the 107-workload registry."""

import pytest

from repro.workloads.registry import EXCLUDED, EXPECTED_WORKLOAD_COUNT, default_registry
from repro.workloads.spec import Category, Framework, InputSize


class TestPopulation:
    def test_exactly_107_workloads(self, registry):
        assert len(registry) == EXPECTED_WORKLOAD_COUNT == 107

    def test_exactly_30_applications(self, registry):
        assert len(registry.applications()) == 30

    def test_three_frameworks_present(self, registry):
        assert {w.framework for w in registry} == set(Framework)

    def test_hadoop_runs_micro_and_olap_only(self, registry):
        hadoop = registry.filter(framework=Framework.HADOOP_27)
        assert {w.category for w in hadoop} == {Category.MICRO, Category.OLAP}
        assert len({w.application for w in hadoop}) == 7

    def test_spark21_runs_stats_and_ml(self, registry):
        spark21 = registry.filter(framework=Framework.SPARK_21)
        assert {w.category for w in spark21} == {
            Category.STATISTICS,
            Category.MACHINE_LEARNING,
        }
        assert len({w.application for w in spark21}) == 23

    def test_spark15_subset_has_8_applications(self, registry):
        spark15 = registry.filter(framework=Framework.SPARK_15)
        assert len({w.application for w in spark15}) == 8

    def test_excluded_workloads_absent(self, registry):
        for app, framework, size in EXCLUDED:
            assert not registry.filter(
                application=app, framework=framework, input_size=size
            )

    def test_exclusions_are_all_large_inputs(self):
        """The paper's exclusions are OOM failures, which only the large
        inputs trigger."""
        assert all(size is InputSize.LARGE for _, _, size in EXCLUDED)

    def test_non_excluded_apps_have_all_three_sizes(self, registry):
        excluded_pairs = {(app, fw) for app, fw, _ in EXCLUDED}
        pairs = {(w.application, w.framework) for w in registry}
        for app, framework in pairs - excluded_pairs:
            sizes = {w.input_size for w in registry.filter(application=app, framework=framework)}
            assert sizes == set(InputSize)


class TestAccess:
    def test_get_by_id(self, registry):
        workload = registry.get("als/Spark 2.1/medium")
        assert workload.application == "als"
        assert workload.framework is Framework.SPARK_21
        assert workload.input_size is InputSize.MEDIUM

    def test_get_unknown_raises(self, registry):
        with pytest.raises(KeyError, match="unknown workload"):
            registry.get("als/Spark 3.0/medium")

    def test_contains(self, registry):
        assert "sort/Hadoop 2.7/small" in registry
        assert "sort/Spark 2.1/small" not in registry

    def test_ids_are_unique(self, registry):
        ids = [w.workload_id for w in registry]
        assert len(set(ids)) == len(ids)

    def test_filter_combination(self, registry):
        result = registry.filter(
            application="bayes", framework=Framework.SPARK_15, input_size=InputSize.SMALL
        )
        assert len(result) == 1

    def test_filter_by_category(self, registry):
        olap = registry.filter(category=Category.OLAP)
        assert {w.application for w in olap} == {"aggregation", "join", "scan"}
        assert len(olap) == 9  # 3 apps x 3 sizes, none excluded

    def test_iteration_matches_workloads_tuple(self, registry):
        assert tuple(registry) == registry.workloads

    def test_registry_cached(self):
        assert default_registry() is default_registry()

    def test_profiles_are_deterministic(self, registry):
        """Rebuilding the registry yields identical latent profiles."""
        from repro.workloads.registry import _build_default

        rebuilt = _build_default()
        for a, b in zip(registry, rebuilt):
            assert a == b
