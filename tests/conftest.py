"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.cloud.vmtypes import default_catalog
from repro.trace.generate import default_trace, generate_trace
from repro.workloads.registry import default_registry


@pytest.fixture(scope="session")
def catalog():
    """The canonical 18-VM catalog."""
    return default_catalog()


@pytest.fixture(scope="session")
def registry():
    """The canonical 107-workload registry."""
    return default_registry()


@pytest.fixture(scope="session")
def trace():
    """The canonical benchmark trace (seed 2018), built once per session."""
    return default_trace()


@pytest.fixture(scope="session")
def clean_trace():
    """A noise-free trace, for tests that assert exact model behaviour."""
    return generate_trace(seed=7, time_sigma=0.0, metric_sigma=0.0)
