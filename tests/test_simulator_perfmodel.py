"""Unit tests for the performance model."""

import pytest

from repro.cloud.vmtypes import get_vm_type
from repro.simulator.perfmodel import (
    MEM_SAFE_FRACTION,
    PerformanceModel,
    PhaseBreakdown,
)
from repro.workloads.spec import ResourceProfile


@pytest.fixture(scope="module")
def model():
    return PerformanceModel()


def profile(**overrides):
    base = dict(
        cpu_seconds=300.0,
        parallel_fraction=0.9,
        working_set_gb=2.0,
        io_gb=10.0,
        shuffle_gb=5.0,
        cpu_gen_sensitivity=0.8,
    )
    base.update(overrides)
    return ResourceProfile(**base)


class TestComputePhase:
    def test_more_cores_reduce_compute_time(self, model):
        p = profile()
        t_large = model.breakdown(get_vm_type("c4.large"), p).compute_time_s
        t_2xl = model.breakdown(get_vm_type("c4.2xlarge"), p).compute_time_s
        assert t_2xl < t_large

    def test_amdahl_limits_speedup(self, model):
        p = profile(parallel_fraction=0.5)
        t_large = model.breakdown(get_vm_type("c4.large"), p).compute_time_s
        t_2xl = model.breakdown(get_vm_type("c4.2xlarge"), p).compute_time_s
        # With 50% serial work, 4x the cores must speed up less than 1.6x.
        assert t_large / t_2xl < 1.6

    def test_serial_workload_gains_nothing_from_cores(self, model):
        p = profile(parallel_fraction=0.0)
        b_large = model.breakdown(get_vm_type("c4.large"), p)
        b_2xl = model.breakdown(get_vm_type("c4.2xlarge"), p)
        assert b_large.compute_time_s == pytest.approx(b_2xl.compute_time_s)

    def test_clock_sensitive_workload_prefers_fast_family(self, model):
        p = profile(cpu_gen_sensitivity=1.0, io_gb=0.0, shuffle_gb=0.0, working_set_gb=0.5)
        t_c4 = model.execution_time(get_vm_type("c4.large"), p)
        t_m3 = model.execution_time(get_vm_type("m3.large"), p)
        assert t_c4 < t_m3

    def test_clock_insensitive_workload_barely_notices_family(self, model):
        p = profile(cpu_gen_sensitivity=0.0, io_gb=0.0, shuffle_gb=0.0, working_set_gb=0.5)
        t_c4 = model.breakdown(get_vm_type("c4.large"), p).compute_time_s
        t_m3 = model.breakdown(get_vm_type("m3.large"), p).compute_time_s
        assert t_c4 == pytest.approx(t_m3)


class TestDiskPhase:
    def test_io_volume_increases_disk_time(self, model):
        vm = get_vm_type("c4.large")
        t_small = model.breakdown(vm, profile(io_gb=5.0)).disk_time_s
        t_big = model.breakdown(vm, profile(io_gb=50.0)).disk_time_s
        assert t_big > t_small

    def test_local_ssd_beats_ebs_for_io(self, model):
        p = profile(io_gb=60.0, shuffle_gb=40.0, cpu_seconds=50.0)
        t_c3 = model.breakdown(get_vm_type("c3.large"), p).disk_time_s
        t_c4 = model.breakdown(get_vm_type("c4.large"), p).disk_time_s
        assert t_c3 < t_c4

    def test_phases_overlap_partially(self, model):
        b = model.breakdown(get_vm_type("c4.large"), profile())
        longer = max(b.compute_time_s, b.disk_time_s)
        total_sum = b.compute_time_s + b.disk_time_s
        assert longer < b.total_time_s < total_sum


class TestPagingCliff:
    def test_no_paging_when_working_set_fits(self, model):
        vm = get_vm_type("r4.2xlarge")  # 61 GB
        b = model.breakdown(vm, profile(working_set_gb=10.0))
        assert not b.paging
        assert b.paging_gb == 0.0

    def test_paging_triggers_above_safe_fraction(self, model):
        vm = get_vm_type("c4.large")  # 3.75 GB
        just_below = model.breakdown(
            vm, profile(working_set_gb=vm.ram_gb * MEM_SAFE_FRACTION * 0.99)
        )
        just_above = model.breakdown(
            vm, profile(working_set_gb=vm.ram_gb * MEM_SAFE_FRACTION * 1.05)
        )
        assert not just_below.paging
        assert just_above.paging

    def test_paging_is_catastrophic(self, model):
        """A working set 3x RAM must slow the VM by an order of magnitude —
        the paper's 14.8x lr-on-c3.large observation (Figure 8)."""
        vm = get_vm_type("c3.large")
        fits = model.execution_time(vm, profile(working_set_gb=1.0))
        thrashes = model.execution_time(vm, profile(working_set_gb=3.0 * vm.ram_gb))
        assert thrashes / fits > 8

    def test_paging_creates_non_smoothness_in_encoding(self, model):
        """c4.large and m4.large are neighbours in the encoded space (CPU
        codes 2 and 4, same cores) but a 6 GB working set pages on one and
        not the other — the fragility mechanism."""
        p = profile(working_set_gb=6.0)
        b_c4 = model.breakdown(get_vm_type("c4.large"), p)
        b_m4 = model.breakdown(get_vm_type("m4.large"), p)
        assert b_c4.paging and not b_m4.paging
        assert model.execution_time(get_vm_type("c4.large"), p) > 2 * model.execution_time(
            get_vm_type("m4.large"), p
        )

    def test_memory_ratio_reported(self, model):
        vm = get_vm_type("m4.large")  # 8 GB
        b = model.breakdown(vm, profile(working_set_gb=4.0))
        assert b.memory_ratio == pytest.approx(0.5)


class TestDeterminism:
    def test_breakdown_is_pure(self, model):
        vm = get_vm_type("r3.xlarge")
        p = profile()
        assert model.breakdown(vm, p) == model.breakdown(vm, p)

    def test_execution_time_matches_breakdown(self, model):
        vm = get_vm_type("r3.xlarge")
        p = profile()
        assert model.execution_time(vm, p) == model.breakdown(vm, p).total_time_s

    def test_breakdown_fields_positive(self, model, catalog, registry):
        for workload in list(registry)[:10]:
            for vm in catalog:
                b = model.breakdown(vm, workload.profile)
                assert isinstance(b, PhaseBreakdown)
                assert b.total_time_s > 0
                assert b.compute_time_s > 0
                assert b.disk_time_s >= 0
                assert b.parallel_speedup >= 1.0
