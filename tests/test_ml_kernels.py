"""Unit and property tests for covariance kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.ml.kernels import (
    RBF,
    Matern12,
    Matern32,
    Matern52,
    Product,
    Sum,
    White,
    kernel_by_name,
)

ALL_KERNELS = (RBF, Matern12, Matern32, Matern52)


def design_matrices():
    return hnp.arrays(
        dtype=float,
        shape=st.tuples(st.integers(1, 12), st.integers(1, 4)),
        elements=st.floats(-10, 10, allow_nan=False),
    )


class TestKernelValues:
    @pytest.mark.parametrize("kernel_cls", ALL_KERNELS)
    def test_self_covariance_equals_variance(self, kernel_cls):
        kernel = kernel_cls(variance=2.5, lengthscale=1.3)
        X = np.array([[1.0, 2.0], [3.0, 4.0]])
        assert np.allclose(np.diag(kernel(X)), 2.5)
        assert np.allclose(kernel.diag(X), 2.5)

    @pytest.mark.parametrize("kernel_cls", ALL_KERNELS)
    def test_covariance_decays_with_distance(self, kernel_cls):
        kernel = kernel_cls()
        x0 = np.zeros((1, 2))
        near = np.array([[0.1, 0.0]])
        far = np.array([[5.0, 0.0]])
        assert kernel(x0, near)[0, 0] > kernel(x0, far)[0, 0]

    @pytest.mark.parametrize("kernel_cls", ALL_KERNELS)
    def test_symmetry(self, kernel_cls):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(6, 3))
        K = kernel_cls()(X)
        assert np.allclose(K, K.T)

    @pytest.mark.parametrize(
        "make",
        [
            pytest.param(lambda: RBF(2.5, 1.3), id="rbf"),
            pytest.param(lambda: Matern12(1.5, 0.7), id="matern12"),
            pytest.param(lambda: Matern32(0.8, 2.1), id="matern32"),
            pytest.param(lambda: Matern52(1.1, 0.9), id="matern52"),
            pytest.param(lambda: RBF(1.2, np.array([0.5, 1.0, 2.0])), id="rbf-ard"),
            pytest.param(lambda: White(0.3), id="white"),
            pytest.param(lambda: Sum(RBF(1.1, 0.9), White(0.2)), id="sum"),
            pytest.param(lambda: Product(Matern32(1.4, 1.1), RBF(0.7, 2.2)), id="product"),
        ],
    )
    def test_diag_matches_full_matrix_diagonal(self, make):
        kernel = make()
        X = np.random.default_rng(2).normal(size=(8, 3))
        assert np.allclose(kernel.diag(X), np.diag(kernel(X)), atol=1e-12)

    def test_base_diag_fallback_is_vectorised(self):
        from repro.ml.kernels import Kernel

        calls = []

        class Counting(RBF):
            def __call__(self, X, Y=None):
                calls.append(np.asarray(X).shape)
                return super().__call__(X, Y)

        X = np.random.default_rng(3).normal(size=(6, 2))
        diag = Kernel.diag(Counting(1.5, 0.8), X)
        assert np.allclose(diag, 1.5)
        # One full-matrix evaluation, not a per-row loop.
        assert calls == [(6, 2)]

    def test_smoothness_ordering_near_origin(self):
        """Rougher kernels decay faster for small distances:
        matern12 < matern32 < matern52 < rbf at the same separation."""
        x0 = np.zeros((1, 1))
        x1 = np.array([[0.5]])
        values = [k()(x0, x1)[0, 0] for k in (Matern12, Matern32, Matern52, RBF)]
        assert values == sorted(values)

    def test_matern12_is_exponential(self):
        kernel = Matern12(variance=1.0, lengthscale=2.0)
        x0, x1 = np.zeros((1, 1)), np.array([[3.0]])
        assert kernel(x0, x1)[0, 0] == pytest.approx(np.exp(-1.5))

    def test_rbf_is_squared_exponential(self):
        kernel = RBF(variance=1.0, lengthscale=2.0)
        x0, x1 = np.zeros((1, 1)), np.array([[2.0]])
        assert kernel(x0, x1)[0, 0] == pytest.approx(np.exp(-0.5))

    @settings(max_examples=30, deadline=None)
    @given(X=design_matrices(), kernel_index=st.integers(0, 3))
    def test_kernel_matrices_are_positive_semidefinite(self, X, kernel_index):
        kernel = ALL_KERNELS[kernel_index]()
        K = kernel(X)
        eigenvalues = np.linalg.eigvalsh(K)
        assert eigenvalues.min() > -1e-8 * max(1.0, eigenvalues.max())


class TestHyperparameters:
    @pytest.mark.parametrize("kernel_cls", ALL_KERNELS)
    def test_theta_roundtrip(self, kernel_cls):
        kernel = kernel_cls(variance=3.0, lengthscale=0.7)
        other = kernel_cls()
        other.theta = kernel.theta
        assert other.variance == pytest.approx(3.0)
        assert other.lengthscale == pytest.approx(0.7)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            RBF(variance=-1.0)
        with pytest.raises(ValueError):
            Matern52(lengthscale=0.0)
        with pytest.raises(ValueError):
            White(noise=0.0)

    def test_clone_is_independent(self):
        kernel = Matern52(variance=2.0)
        copy = kernel.clone()
        copy.theta = np.log([9.0, 1.0])
        assert kernel.variance == pytest.approx(2.0)

    def test_bounds_shape_matches_theta(self):
        for kernel_cls in ALL_KERNELS:
            kernel = kernel_cls()
            assert kernel.bounds.shape == (kernel.theta.size, 2)


class TestComposition:
    def test_sum_adds_pointwise(self):
        X = np.random.default_rng(1).normal(size=(4, 2))
        a, b = RBF(), Matern32()
        assert np.allclose(Sum(a, b)(X), a(X) + b(X))
        assert np.allclose((a + b)(X), a(X) + b(X))

    def test_product_multiplies_pointwise(self):
        X = np.random.default_rng(2).normal(size=(4, 2))
        a, b = RBF(), Matern12()
        assert np.allclose(Product(a, b)(X), a(X) * b(X))
        assert np.allclose((a * b)(X), a(X) * b(X))

    def test_white_adds_diagonal_only(self):
        X = np.random.default_rng(3).normal(size=(5, 2))
        white = White(noise=0.5)
        assert np.allclose(white(X), 0.5 * np.eye(5))
        assert np.allclose(white(X, X + 1.0), 0.0)

    def test_composed_theta_concatenates(self):
        combined = RBF() + White(noise=0.1)
        assert combined.theta.size == 3
        combined.theta = np.log([2.0, 3.0, 0.5])
        assert combined.left.variance == pytest.approx(2.0)
        assert combined.right.noise == pytest.approx(0.5)

    def test_composed_clone_deep(self):
        combined = RBF() * Matern52()
        copy = combined.clone()
        copy.theta = np.log([5.0, 5.0, 5.0, 5.0])
        assert combined.left.variance == pytest.approx(1.0)


class TestKernelByName:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("rbf", RBF),
            ("RBF", RBF),
            ("matern12", Matern12),
            ("Matern3/2", Matern32),
            ("matern-52", Matern52),
            ("MATERN_52", Matern52),
        ],
    )
    def test_accepted_spellings(self, name, cls):
        assert isinstance(kernel_by_name(name), cls)

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            kernel_by_name("periodic")
