"""Unit tests for Hybrid BO."""

import pytest

from repro.core.hybrid_bo import HybridBO
from repro.core.naive_bo import NaiveBO


@pytest.fixture()
def environment(trace):
    return trace.environment("kmeans/Spark 2.1/small")


class TestHybridBO:
    def test_exhaustive_run_measures_everything(self, environment):
        result = HybridBO(environment, seed=0).run()
        assert result.search_cost == 18

    def test_matches_naive_before_switch(self, trace):
        """With the same seed, Hybrid's measurements up to switch_at must
        be exactly Naive BO's — it literally runs the GP scorer early."""
        for seed in range(3):
            naive = NaiveBO(trace.environment("kmeans/Spark 2.1/small"), seed=seed).run()
            hybrid = HybridBO(
                trace.environment("kmeans/Spark 2.1/small"), seed=seed, switch_at=5
            ).run()
            assert naive.measured_vm_names[:5] == hybrid.measured_vm_names[:5]

    def test_diverges_from_naive_after_switch(self, trace):
        """Across seeds, the augmented phase must eventually propose
        differently from the GP."""
        diverged = False
        for seed in range(6):
            naive = NaiveBO(trace.environment("kmeans/Spark 2.1/small"), seed=seed).run()
            hybrid = HybridBO(
                trace.environment("kmeans/Spark 2.1/small"), seed=seed, switch_at=5
            ).run()
            if naive.measured_vm_names[5:] != hybrid.measured_vm_names[5:]:
                diverged = True
                break
        assert diverged

    def test_switch_at_one_is_augmented_from_the_start(self, trace):
        result = HybridBO(
            trace.environment("kmeans/Spark 2.1/small"), seed=0, switch_at=1
        ).run()
        assert result.search_cost == 18

    def test_invalid_switch_at_rejected(self, environment):
        with pytest.raises(ValueError, match="switch_at"):
            HybridBO(environment, switch_at=0)

    def test_deterministic_given_seed(self, trace):
        a = HybridBO(trace.environment("kmeans/Spark 2.1/small"), seed=11).run()
        b = HybridBO(trace.environment("kmeans/Spark 2.1/small"), seed=11).run()
        assert a.measured_vm_names == b.measured_vm_names
