"""Unit tests for the VM catalog."""

import pytest

from repro.cloud.vmtypes import (
    VM_FAMILIES,
    VM_SIZES,
    VMType,
    default_catalog,
    get_vm_type,
)


class TestCatalogStructure:
    def test_has_exactly_18_types(self, catalog):
        assert len(catalog) == 18

    def test_covers_every_family_size_combination(self, catalog):
        names = {vm.name for vm in catalog}
        expected = {f"{family}.{size}" for family in VM_FAMILIES for size in VM_SIZES}
        assert names == expected

    def test_canonical_order_is_family_major(self, catalog):
        names = [vm.name for vm in catalog]
        assert names[:3] == ["c3.large", "c3.xlarge", "c3.2xlarge"]
        assert names[-1] == "r4.2xlarge"

    def test_catalog_is_immutable_tuple(self, catalog):
        assert isinstance(catalog, tuple)

    def test_repeated_calls_return_same_objects(self):
        assert default_catalog() is default_catalog()


class TestVMAttributes:
    def test_vcpus_double_with_size(self):
        assert get_vm_type("c4.large").vcpus == 2
        assert get_vm_type("c4.xlarge").vcpus == 4
        assert get_vm_type("c4.2xlarge").vcpus == 8

    def test_ram_doubles_with_size(self):
        large = get_vm_type("r4.large").ram_gb
        assert get_vm_type("r4.xlarge").ram_gb == pytest.approx(2 * large)
        assert get_vm_type("r4.2xlarge").ram_gb == pytest.approx(4 * large)

    def test_memory_family_has_most_ram_per_core(self):
        c, m, r = (get_vm_type(f"{f}4.large") for f in "cmr")
        assert c.ram_per_core_gb < m.ram_per_core_gb < r.ram_per_core_gb

    def test_ram_per_core_class_follows_family_letter(self, catalog):
        for vm in catalog:
            assert vm.ram_per_core_class == {"c": 2, "m": 4, "r": 8}[vm.family[0]]

    def test_ebs_class_follows_size(self, catalog):
        for vm in catalog:
            assert vm.ebs_class == {"large": 1, "xlarge": 2, "2xlarge": 3}[vm.size]

    def test_gen3_has_local_ssd_gen4_does_not(self, catalog):
        for vm in catalog:
            assert vm.local_ssd == (vm.generation == 3)

    def test_local_ssd_outruns_ebs_where_present(self, catalog):
        for vm in catalog:
            if vm.local_ssd:
                assert vm.local_ssd_mbps > vm.ebs_mbps
                assert vm.disk_mbps == vm.local_ssd_mbps
            else:
                assert vm.local_ssd_mbps == 0.0
                assert vm.disk_mbps == vm.ebs_mbps

    def test_compute_gen4_has_fastest_clock(self, catalog):
        c4 = get_vm_type("c4.large")
        assert all(vm.clock_factor <= c4.clock_factor for vm in catalog)

    def test_str_is_the_aws_name(self):
        assert str(get_vm_type("m3.xlarge")) == "m3.xlarge"

    def test_vm_types_are_hashable_and_frozen(self):
        vm = get_vm_type("c3.large")
        assert vm in {vm}
        with pytest.raises(AttributeError):
            vm.vcpus = 4  # type: ignore[misc]


class TestLookup:
    def test_lookup_roundtrip_for_all(self, catalog):
        for vm in catalog:
            assert get_vm_type(vm.name) is vm

    def test_unknown_name_raises_keyerror_with_candidates(self):
        with pytest.raises(KeyError, match="c5.large"):
            get_vm_type("c5.large")

    def test_vmtype_equality_is_structural(self):
        a = get_vm_type("c3.large")
        b = VMType(**{f: getattr(a, f) for f in (
            "name", "family", "generation", "size", "vcpus", "ram_gb",
            "clock_factor", "ebs_mbps", "local_ssd", "local_ssd_mbps",
        )})
        assert a == b
