"""Seeded search-outcome equivalence: analytic vs numeric GP gradients.

The analytic mode optimises the same log marginal likelihood as the
numeric (finite-difference) mode, but with exact gradients the two
L-BFGS-B runs can settle in different — equally good — local optima of a
multi-modal surface.  Individual hyperparameter fits therefore differ
beyond optimiser tolerance; what must agree is the *search outcome*: on
the tier-1 grid configuration (the engine test workloads, ``run_seed``
seeding, CherryPick's EI stopping rule) both modes must find a
comparably good VM at a comparable search cost.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.runner import ExperimentRunner, RunGrid
from repro.core.naive_bo import NaiveBO
from repro.core.objectives import Objective
from repro.core.stopping import EIThreshold
from repro.ml.kernels import kernel_by_name

WORKLOADS = ("kmeans/Spark 2.1/small", "lr/Spark 1.5/medium")
REPEATS = 2

#: The selected VM's objective may differ by at most this factor.
BEST_VALUE_RTOL = 0.10
#: Search costs may differ by at most this many measurements.
COST_SLACK = 4


def _factory(gradient):
    def factory(environment, objective, seed):
        return NaiveBO(
            environment,
            objective=objective,
            seed=seed,
            kernel=kernel_by_name("matern52"),
            stopping=EIThreshold(),
            gp_gradient=gradient,
        )

    return factory


@pytest.fixture(scope="module")
def outcomes(trace):
    results = {}
    for gradient in ("analytic", "numeric"):
        grid = RunGrid(
            key=f"gp-gradient-equiv-{gradient}",
            factory=_factory(gradient),
            objective=Objective.TIME,
            workload_ids=WORKLOADS,
            repeats=REPEATS,
        )
        results[gradient] = ExperimentRunner(trace, cache_dir=None).run(grid)
    return results


class TestSearchOutcomeEquivalence:
    def test_equivalent_best_vm_quality(self, outcomes):
        """Both modes must find a VM of (near-)identical measured quality."""
        for workload in WORKLOADS:
            for analytic, numeric in zip(
                outcomes["analytic"][workload], outcomes["numeric"][workload]
            ):
                assert analytic.best_value == pytest.approx(
                    numeric.best_value, rel=BEST_VALUE_RTOL
                )

    def test_comparable_search_costs(self, outcomes):
        for workload in WORKLOADS:
            analytic_costs = [r.search_cost for r in outcomes["analytic"][workload]]
            numeric_costs = [r.search_cost for r in outcomes["numeric"][workload]]
            for a, n in zip(analytic_costs, numeric_costs):
                assert abs(a - n) <= COST_SLACK

    def test_same_initial_design(self, outcomes):
        """The seeded initial design is gradient-mode independent."""
        for workload in WORKLOADS:
            for analytic, numeric in zip(
                outcomes["analytic"][workload], outcomes["numeric"][workload]
            ):
                assert (
                    analytic.measured_vm_names[:3] == numeric.measured_vm_names[:3]
                )


class TestScorerEquivalence:
    def test_scores_agree_at_fixed_hyperparameters(self, trace):
        """With optimisation off, the incremental-geometry scoring path
        must reproduce the legacy direct-evaluation path exactly."""
        from repro.core.naive_bo import GPScorer

        rng = np.random.default_rng(11)
        design = rng.uniform(size=(14, 5))
        y = rng.uniform(1.0, 3.0, size=14)
        measured = [2, 7, 11, 4]

        scores = {}
        for gradient in ("analytic", "numeric"):
            scorer = GPScorer(design, seed=0, gradient=gradient)
            scorer.gp.optimise = False
            unmeasured = [i for i in range(14) if i not in measured]
            scores[gradient] = scorer.score(measured, y[measured], unmeasured)

        assert np.allclose(scores["analytic"].scores, scores["numeric"].scores, atol=1e-9)
        assert np.allclose(
            scores["analytic"].predicted, scores["numeric"].predicted, atol=1e-9
        )

    def test_incremental_geometry_used_in_analytic_mode(self, trace):
        from repro.core.naive_bo import GPScorer

        rng = np.random.default_rng(12)
        design = rng.uniform(size=(10, 3))
        y = rng.uniform(1.0, 2.0, size=10)
        scorer = GPScorer(design, seed=0, gradient="analytic")
        measured = []
        for step, index in enumerate([3, 8, 1, 6]):
            measured.append(index)
            unmeasured = [i for i in range(10) if i not in measured]
            scorer.score(measured, np.asarray(y)[measured], unmeasured)
        stats = scorer.geometry_stats
        assert stats["extensions"] == 4
        assert stats["rebuilds"] == 0
