"""Unit and property tests for feature scalers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.ml.scaling import MinMaxScaler, StandardScaler


def matrices():
    return hnp.arrays(
        dtype=float,
        shape=st.tuples(st.integers(1, 30), st.integers(1, 5)),
        elements=st.floats(-1e6, 1e6, allow_nan=False),
    )


class TestStandardScaler:
    def test_transform_centres_and_scales(self):
        rng = np.random.default_rng(0)
        X = rng.normal(5.0, 3.0, size=(200, 3))
        scaled = StandardScaler().fit_transform(X)
        assert np.allclose(scaled.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(scaled.std(axis=0), 1.0, atol=1e-9)

    def test_constant_feature_centred_not_scaled(self):
        X = np.column_stack([np.full(10, 4.0), np.arange(10.0)])
        scaled = StandardScaler().fit_transform(X)
        assert np.allclose(scaled[:, 0], 0.0)
        assert np.isfinite(scaled).all()

    def test_transform_uses_fit_statistics(self):
        scaler = StandardScaler().fit(np.array([[0.0], [10.0]]))
        assert scaler.transform(np.array([[5.0]]))[0, 0] == pytest.approx(0.0)
        assert scaler.transform(np.array([[10.0]]))[0, 0] == pytest.approx(1.0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError, match="fitted"):
            StandardScaler().transform(np.zeros((1, 1)))
        with pytest.raises(RuntimeError, match="fitted"):
            StandardScaler().inverse_transform(np.zeros((1, 1)))

    def test_empty_fit_raises(self):
        with pytest.raises(ValueError, match="empty"):
            StandardScaler().fit(np.zeros((0, 2)))

    def test_1d_input_treated_as_single_feature(self):
        scaled = StandardScaler().fit_transform(np.array([1.0, 2.0, 3.0]))
        assert scaled.shape == (3, 1)

    @settings(max_examples=30, deadline=None)
    @given(X=matrices())
    def test_inverse_transform_roundtrip(self, X):
        scaler = StandardScaler().fit(X)
        recovered = scaler.inverse_transform(scaler.transform(X))
        assert np.allclose(recovered, X, rtol=1e-9, atol=1e-6)


class TestMinMaxScaler:
    def test_maps_to_unit_interval(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(-50, 50, size=(100, 4))
        scaled = MinMaxScaler().fit_transform(X)
        assert np.allclose(scaled.min(axis=0), 0.0)
        assert np.allclose(scaled.max(axis=0), 1.0)

    def test_constant_feature_maps_to_zero(self):
        X = np.column_stack([np.full(5, 2.0), np.arange(5.0)])
        scaled = MinMaxScaler().fit_transform(X)
        assert np.allclose(scaled[:, 0], 0.0)

    def test_out_of_range_inputs_extrapolate(self):
        scaler = MinMaxScaler().fit(np.array([[0.0], [10.0]]))
        assert scaler.transform(np.array([[20.0]]))[0, 0] == pytest.approx(2.0)
        assert scaler.transform(np.array([[-10.0]]))[0, 0] == pytest.approx(-1.0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError, match="fitted"):
            MinMaxScaler().transform(np.zeros((1, 1)))

    @settings(max_examples=30, deadline=None)
    @given(X=matrices())
    def test_inverse_transform_roundtrip(self, X):
        scaler = MinMaxScaler().fit(X)
        recovered = scaler.inverse_transform(scaler.transform(X))
        assert np.allclose(recovered, X, rtol=1e-9, atol=1e-6)
